#include "rules/explorer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "analysis/commutativity.h"
#include "common/metrics.h"
#include "common/striped_set.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "common/work_stealing.h"
#include "engine/exec.h"
#include "engine/fingerprint.h"
#include "rulelang/parser.h"

namespace starburst {

std::string ObservableStreamToString(const std::vector<ObservableEvent>& stream) {
  std::string out;
  for (const ObservableEvent& ev : stream) {
    out += ev.kind == ObservableEvent::Kind::kRollback ? "R:" : "S:";
    out += ev.payload;
    out += "\n";
  }
  return out;
}

namespace {

/// Serializes an observable stream for set-of-streams comparison.
std::string StreamToString(const std::vector<ObservableEvent>& stream) {
  return ObservableStreamToString(stream);
}

/// Interns canonical state strings to dense uint32 ids. Keys are looked up
/// by their 64-bit FNV-1a hash; colliding keys are chained and verified by
/// full-string comparison, so distinct canonical forms always get distinct
/// ids. The canonical string is stored exactly once, and every per-state
/// structure downstream (visited / on-path / graph-node / memo) is a flat
/// vector indexed by the dense id instead of a string-keyed hash set.
class StateInterner {
 public:
  static constexpr uint32_t kNil = 0xffffffffu;

  /// Returns {dense id, true when freshly interned}.
  std::pair<uint32_t, bool> Intern(std::string&& key) {
    uint64_t h = Hash(key);
    auto it = buckets_.try_emplace(h, kNil).first;
    for (uint32_t id = it->second; id != kNil; id = next_[id]) {
      if (keys_[id] == key) return {id, false};
    }
    uint32_t id = static_cast<uint32_t>(keys_.size());
    keys_.push_back(std::move(key));
    next_.push_back(it->second);
    it->second = id;
    return {id, true};
  }

  const std::string& key(uint32_t id) const { return keys_[id]; }
  size_t size() const { return keys_.size(); }

 private:
  static uint64_t Hash(const std::string& s) {
    // FNV-1a over 8-byte words instead of bytes (8x fewer multiplies on the
    // long canonical strings this interner sees), with a final xor-shift
    // avalanche. Colliding keys are verified by full comparison, so the
    // hash only needs good distribution, not cryptographic strength.
    uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
    const char* p = s.data();
    size_t n = s.size();
    while (n >= 8) {
      uint64_t w;
      std::memcpy(&w, p, 8);
      h = (h ^ w) * 1099511628211ull;  // FNV-1a prime
      p += 8;
      n -= 8;
    }
    if (n > 0) {
      uint64_t tail = static_cast<uint64_t>(n) << 56;
      std::memcpy(&tail, p, n);
      h = (h ^ tail) * 1099511628211ull;
    }
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    return h;
  }

  std::unordered_map<uint64_t, uint32_t> buckets_;  // hash -> chain head
  std::vector<std::string> keys_;                   // id -> canonical form
  std::vector<uint32_t> next_;  // id -> next id with the same hash
};

/// Interns 128-bit state fingerprints to dense uint32 ids — the undo-log
/// backend's replacement for StateInterner. No canonical strings are stored;
/// distinct logical states are distinct up to 128-bit hash collisions
/// (cross-checked against the string-keyed backend by the delta_equivalence
/// fuzz oracle).
class FingerprintInterner {
 public:
  /// Returns {dense id, true when freshly interned}.
  std::pair<uint32_t, bool> Intern(const Hash128& key) {
    auto [it, fresh] =
        ids_.try_emplace(key, static_cast<uint32_t>(ids_.size()));
    return {it->second, fresh};
  }

  size_t size() const { return ids_.size(); }

 private:
  std::unordered_map<Hash128, uint32_t, Hash128Hasher> ids_;
};

/// Salt separating the pending-transition lane of a state fingerprint from
/// the database lane, and the synthetic-rollback lane from both.
constexpr uint64_t kPendingSalt = 0x70656e64696e67ull;
constexpr uint64_t kRollbackSalt = 0x726f6c6c6261636bull;

/// Fingerprint of an execution state for the undo-log backend: the
/// database's incremental content fingerprint plus each pending
/// transition's incremental content hash mixed with a per-rule salt.
/// Nothing is rendered — both lanes are maintained deltas. The
/// equivalence classes match the snapshot-copy backend's string keys: the
/// database lane is rid-independent in both backends, the pending lane is
/// rid-sensitive in both (Transition::ContentHash covers rids) — and
/// delta revert restores rid counters, so both backends see identical
/// pending content along equal paths.
Hash128 StateFingerprintUndo(const RuleProcessingState& state) {
  Hash128 fp = state.db.ContentFingerprint();
  uint64_t salt = kPendingSalt;
  for (const Transition& t : state.pending) {
    fp.Add(MixWithSalt(t.ContentHash(), salt++));
  }
  return fp;
}

/// Canonical key of an execution state (database + per-rule pending
/// transitions). `*db_len` receives the length of the database prefix,
/// which doubles as the final-state fingerprint. Shared by the classic
/// explorer's per-visit key builder and the sharded root key.
std::string CanonicalStateKey(const RuleProcessingState& state,
                              size_t* db_len, size_t reserve_hint = 0) {
  std::string key;
  key.reserve(reserve_hint);
  state.db.AppendCanonicalString(&key);
  *db_len = key.size();
  key += '#';
  for (const Transition& t : state.pending) {
    t.AppendCanonicalString(&key);
    key += '|';
  }
  return key;
}

/// Inclusive upper edges for the explorer.revert_depth histogram (DFS
/// stack depth at each undo-log revert).
const std::vector<int64_t>& RevertDepthBounds() {
  static const std::vector<int64_t>* bounds =
      new std::vector<int64_t>{1, 2, 4, 8, 16, 32, 64};
  return *bounds;
}

/// Inclusive upper edges for the explorer.shard_states histogram (states
/// visited per top-level shard in sharded mode).
const std::vector<int64_t>& ShardStatesBounds() {
  static const std::vector<int64_t>* bounds = new std::vector<int64_t>{
      1, 10, 100, 1000, 10000, 100000};
  return *bounds;
}

/// Inclusive upper edges for the explorer.interner_contention histogram
/// (contended stripe-lock acquisitions on the shared interner, recorded
/// once per work-stealing exploration).
const std::vector<int64_t>& ContentionBounds() {
  static const std::vector<int64_t>* bounds = new std::vector<int64_t>{
      1, 10, 100, 1000, 10000, 100000};
  return *bounds;
}

bool TestBit(const std::vector<bool>& bits, uint32_t id) {
  return id < bits.size() && bits[id];
}

void SetBit(std::vector<bool>* bits, uint32_t id, bool value) {
  if (id >= bits->size()) bits->resize(id + 1, false);
  (*bits)[id] = value;
}

/// Resolves ExplorerOptions::por. kDefault follows the STARBURST_POR
/// environment variable (same pattern as STARBURST_THREADS), so the whole
/// test suite doubles as a POR on/off matrix.
bool PorEnabled(const ExplorerOptions& options) {
  switch (options.por) {
    case ExplorerOptions::PorMode::kOff:
      return false;
    case ExplorerOptions::PorMode::kCommute:
      return true;
    case ExplorerOptions::PorMode::kDefault:
      break;
  }
  const char* env = std::getenv("STARBURST_POR");
  return env != nullptr &&
         (std::strcmp(env, "1") == 0 || std::strcmp(env, "true") == 0);
}

/// Per-rule partial-order-reduction safety, computed ONCE per exploration
/// and shared read-only across shards. safe[r] holds when expanding r
/// FIRST provably reaches the same final states, observable streams, and
/// termination verdict as every order that defers r:
///   - r commutes with every other catalog rule (the Lemma 6.1 syntactic
///     matrix OR-ed with ExplorerOptions::por_certifications), so firing r
///     cannot trigger, untrigger, or perturb any deferred sibling — and no
///     sibling can untrigger r, so r stays pending until fired;
///   - r has no observable actions (SELECT / ROLLBACK), so the pruned
///     sibling orders contribute no distinct observable stream;
///   - r never triggers itself, so r fires at most once per path and the
///     forced prefix terminates;
///   - r is priority-unordered with every other rule, so the reduction
///     never commutes a consideration across a Section 3 ordering edge.
/// Returns empty when reduction is disabled.
std::vector<bool> PorSafeRules(const RuleCatalog& catalog,
                               const ExplorerOptions& options) {
  if (!PorEnabled(options)) return {};
  const PrelimAnalysis& prelim = catalog.prelim();
  const int n = catalog.num_rules();
  CommutativityAnalyzer commute(prelim, catalog.schema(),
                                options.por_certifications);
  std::vector<bool> safe(static_cast<size_t>(n), false);
  for (RuleIndex i = 0; i < n; ++i) {
    if (prelim.rule(i).observable) continue;
    if (prelim.TriggersRule(i, i)) continue;
    bool ok = true;
    for (RuleIndex j = 0; ok && j < n; ++j) {
      if (j == i) continue;
      ok = commute.Commute(i, j) && catalog.priority().Unordered(i, j);
    }
    safe[static_cast<size_t>(i)] = ok;
  }
  return safe;
}

/// Ample-set reduction applied to a freshly chosen eligible set: when it
/// contains a safe rule, only the lowest-indexed one is expanded (Choose
/// returns ascending indices, so the pick is deterministic) and the
/// sibling orders are counted into `por_pruned_orders`.
void ReduceEligible(const std::vector<bool>* por_safe,
                    std::vector<RuleIndex>* eligible, long* pruned_orders) {
  if (por_safe == nullptr || eligible->size() <= 1) return;
  for (RuleIndex r : *eligible) {
    if ((*por_safe)[static_cast<size_t>(r)]) {
      *pruned_orders += static_cast<long>(eligible->size()) - 1;
      eligible->assign(1, r);
      return;
    }
  }
}

class ExplorerImpl {
 public:
  /// `por_safe` is the precomputed POR safety bitvector (see PorSafeRules),
  /// or nullptr when reduction is off; it is shared read-only across every
  /// shard of a sharded exploration.
  ExplorerImpl(const RuleCatalog& catalog, const Database& initial_db,
               const ExplorerOptions& options,
               const std::vector<bool>* por_safe = nullptr)
      : catalog_(catalog),
        initial_db_(initial_db),
        options_(options),
        por_safe_(por_safe),
        undo_(options.backend == ExplorerOptions::StateBackend::kUndoLog) {}

  Result<ExplorationResult> Run(const Transition& initial_transition) {
    auto start = std::chrono::steady_clock::now();
    {
      RuleProcessingState state(&catalog_.schema(), catalog_.num_rules());
      state.db = initial_db_;
      for (Transition& t : state.pending) t = initial_transition;
      if (undo_) {
        // The one database copy of the whole exploration: every branch
        // below steps it forward and reverts it via the undo log.
        cur_.emplace(std::move(state));
        cur_->pending_undo = &pending_undo_;
        EnterUndo(kNoParent, /*via=*/-1, /*restore_stream=*/0,
                  /*delta_open=*/false);
      } else {
        Enter(std::move(state), kNoParent, /*via=*/-1, /*restore_stream=*/0);
      }
    }
    return Drive(start);
  }

  /// Sharded-mode seeding: interns the parent (root) state's key and marks
  /// it visited and on-path WITHOUT counting it, so a path looping back to
  /// the root is detected as a cycle exactly like in the classic explorer
  /// while the root itself is accounted once by the merge.
  void SeedRootOnPath(std::string root_key) {
    auto [id, fresh] = interner_.Intern(std::move(root_key));
    (void)fresh;
    SetBit(&visited_, id, true);
    SetBit(&on_path_, id, true);
  }

  /// Fingerprint analogue of SeedRootOnPath for the undo-log backend.
  void SeedRootOnPathFp(const Hash128& root_fp) {
    auto [id, fresh] = fp_interner_.Intern(root_fp);
    (void)fresh;
    SetBit(&visited_, id, true);
    SetBit(&on_path_, id, true);
  }

  /// Sharded-mode seeding: the observable events of the top-level rule
  /// consideration that produced this shard's start state. They prefix
  /// every stream the shard records.
  void SeedStream(const std::vector<ObservableEvent>& prefix) {
    stream_ = prefix;
  }

  /// Sharded-mode entry: explores the subtree rooted at `state` (the state
  /// one top-level consideration below the seeded root).
  Result<ExplorationResult> RunFromState(RuleProcessingState&& state) {
    auto start = std::chrono::steady_clock::now();
    if (undo_) {
      cur_.emplace(std::move(state));
      cur_->pending_undo = &pending_undo_;
      EnterUndo(kNoParent, /*via=*/-1, /*restore_stream=*/stream_.size(),
                /*delta_open=*/false);
    } else {
      Enter(std::move(state), kNoParent, /*via=*/-1,
            /*restore_stream=*/stream_.size());
    }
    return Drive(start);
  }

 private:
  Result<ExplorationResult> Drive(
      std::chrono::steady_clock::time_point start) {
    // Explicit-stack DFS: the top frame either expands its next eligible
    // rule (which records a terminal child or pushes a new frame) or is
    // popped. Depth is bounded by ExplorerOptions::max_depth, never by the
    // C++ call stack.
    while (!stack_.empty()) {
      size_t top = stack_.size() - 1;
      Frame& f = stack_[top];
      if (f.next_child >= f.eligible.size()) {
        PopFrame();
        continue;
      }
      RuleIndex r = f.eligible[f.next_child++];
      ++result_.steps_taken;
      bool last_child = f.next_child == f.eligible.size();
      if (undo_) {
        // The live state already sits at this frame: children revert their
        // database deltas AND their pending mutations (via the pending
        // undo log), so nothing is copied or restored per child.
        pending_undo_.Mark();
        cur_->db.BeginDelta();
        auto step = ConsiderRule(catalog_, &*cur_, r);
        if (!step.ok()) return step.status();
        size_t mark = stream_.size();
        if (!options_.dedup_subtrees) {
          for (const ObservableEvent& ev : step.value().observables) {
            stream_.push_back(ev);
          }
        }
        if (step.value().rollback) {
          // Transaction aborted: final database is the initial database.
          cur_->db.RevertDelta();
          pending_undo_.RevertToMark();
          NoteRevert();
          EnterRollback(top, r);
          stream_.resize(mark);
        } else {
          EnterUndo(top, r, mark, /*delta_open=*/true);  // may invalidate `f`
        }
        continue;
      }
      // Snapshot-copy backend: the frame's state feeds each child in turn;
      // the last child can steal it instead of copying (PopFrame never
      // reads it). Chains of single-eligible states — the common fixpoint
      // shape — therefore expand with zero database copies.
      RuleProcessingState next =
          last_child ? std::move(*f.state) : *f.state;
      auto step = ConsiderRule(catalog_, &next, r);
      if (!step.ok()) return step.status();
      size_t mark = stream_.size();
      if (!options_.dedup_subtrees) {
        for (const ObservableEvent& ev : step.value().observables) {
          stream_.push_back(ev);
        }
      }
      if (step.value().rollback) {
        // Transaction aborted: final database is the initial database.
        EnterRollback(top, r);
        stream_.resize(mark);
      } else {
        Enter(std::move(next), top, r, mark);  // may invalidate `f`
      }
    }
    result_.states_visited = visited_count_;
    result_.streams_evaluated = !options_.dedup_subtrees;
    result_.stats.states_interned = static_cast<long>(
        undo_ ? fp_interner_.size() : interner_.size());
    result_.stats.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return std::move(result_);
  }

 private:
  static constexpr size_t kNoParent = static_cast<size_t>(-1);
  static constexpr int kNodeUnassigned = -2;

  struct Frame {
    /// Snapshot-copy backend: the frame's full state (absent in undo mode).
    std::optional<RuleProcessingState> state;
    /// Undo-log backend: true when this frame holds an open delta on
    /// `cur_->db` plus a matching pending-undo mark (every frame except a
    /// path root); PopFrame reverts both. The frame stores no state of its
    /// own — `cur_` is stepped forward and reverted in place.
    bool owns_delta = false;
    uint32_t id = 0;
    int node = -1;
    std::vector<RuleIndex> eligible;
    size_t next_child = 0;
    /// Stream length to restore when this frame is popped.
    size_t restore_stream = 0;
    /// Final-state ids reached from this subtree (dedup mode only).
    std::vector<uint32_t> reached_finals;
    /// True when the subtree's enumeration is provably incomplete (budget /
    /// depth bail-out) or entangled with a state still on the path (cycle);
    /// tainted subtrees are never memoized.
    bool tainted = false;
  };

  /// Canonical key of an execution state (database + per-rule pending
  /// transitions), built once per visit into a single buffer. Rid-sensitive,
  /// so logically identical states reached with different tuple identities
  /// get distinct keys — that only costs extra exploration, never wrong
  /// results. `*db_len` receives the length of the database prefix, which
  /// doubles as the final-state fingerprint.
  std::string BuildStateKey(const RuleProcessingState& state,
                            size_t* db_len) {
    std::string key = CanonicalStateKey(state, db_len, last_key_size_ + 32);
    last_key_size_ = key.size();
    return key;
  }

  void MarkVisited(uint32_t id) {
    if (!TestBit(visited_, id)) {
      SetBit(&visited_, id, true);
      ++visited_count_;
    }
  }

  /// Counts an undo-log revert and records the DFS depth it happened at.
  /// The per-event histogram Record is the only per-step registry write in
  /// the explorer (everything else flushes once at end of run), and it is
  /// gated on metrics::Enabled() inside the macro.
  void NoteRevert() {
    ++result_.stats.delta_reverts;
    STARBURST_METRIC_HISTOGRAM("explorer.revert_depth", RevertDepthBounds(),
                               static_cast<int64_t>(stack_.size()));
  }

  /// Returns the recorded-graph node id for interned state `id`, or -1
  /// when recording is off or the node cap was hit.
  int GraphNode(uint32_t id) {
    if (!options_.record_graph) return -1;
    if (id >= graph_node_.size()) graph_node_.resize(id + 1, kNodeUnassigned);
    int& slot = graph_node_[id];
    if (slot == kNodeUnassigned) {
      if (next_graph_node_ >= options_.max_recorded_nodes) {
        result_.graph_truncated = true;
        slot = -1;
      } else {
        slot = next_graph_node_++;
        result_.node_is_final.push_back(false);
      }
    }
    return slot;
  }

  void RecordEdge(int from, int to, RuleIndex rule) {
    if (!options_.record_graph || from < 0 || to < 0) return;
    result_.graph_edges.push_back({from, to, rule});
  }

  /// Records the current path's observable stream (full enumeration mode
  /// only). A stream that is already in the set never marks the result
  /// incomplete — only a NEW stream that would exceed max_streams does.
  void RecordStream() {
    if (options_.dedup_subtrees) return;
    std::string s = StreamToString(stream_);
    if (static_cast<int>(result_.observable_streams.size()) <
        options_.max_streams) {
      result_.observable_streams.insert(std::move(s));
    } else if (result_.observable_streams.count(s) == 0) {
      result_.complete = false;
    }
  }

  /// Records a final database (by canonical fingerprint) and the path's
  /// observable stream.
  uint32_t RecordFinal(std::string db_key, const Database& db) {
    auto [it, fresh] = final_ids_.try_emplace(
        db_key, static_cast<uint32_t>(final_ids_.size()));
    if (fresh) {
      result_.final_states.insert(db_key);
      result_.final_databases.emplace(std::move(db_key), db);
    }
    RecordStream();
    return it->second;
  }

  /// Undo-backend analogue of RecordFinal: final databases are deduplicated
  /// by content fingerprint, and the reported canonical string is rendered
  /// only for FRESH fingerprints — the whole point of the backend is that
  /// revisited finals cost O(1), not O(database).
  uint32_t RecordFinalUndo(const Database& db) {
    auto [it, fresh] = final_fp_ids_.try_emplace(
        db.ContentFingerprint(),
        static_cast<uint32_t>(final_fp_ids_.size()));
    if (fresh) {
      std::string db_key = db.CanonicalString();
      result_.stats.canonicalization_bytes +=
          static_cast<long>(db_key.size());
      result_.final_states.insert(db_key);
      result_.final_databases.emplace(std::move(db_key), db);
    }
    RecordStream();
    return it->second;
  }

  void AddFinal(size_t parent, uint32_t final_id) {
    if (!options_.dedup_subtrees || parent == kNoParent) return;
    stack_[parent].reached_finals.push_back(final_id);
  }

  void Taint(size_t parent) {
    if (!options_.dedup_subtrees || parent == kNoParent) return;
    stack_[parent].tainted = true;
  }

  /// In dedup mode, a final state's subtree is itself: memoize it so a
  /// revisit skips recomputing TriggeredRules.
  void MemoizeFinal(uint32_t id, uint32_t final_id) {
    if (!options_.dedup_subtrees) return;
    if (TestBit(memo_black_, id)) return;
    SetBit(&memo_black_, id, true);
    memo_finals_.emplace(id, std::vector<uint32_t>{final_id});
  }

  /// Evaluates one execution state: interns it, records the incoming edge,
  /// and either handles it terminally (cycle / memo hit / final / budget /
  /// depth) or pushes a DFS frame for expansion. `restore_stream` is the
  /// stream length to restore once the state's subtree is done (terminal
  /// states restore it immediately).
  void Enter(RuleProcessingState&& state, size_t parent, RuleIndex via,
             size_t restore_stream) {
    size_t db_len = 0;
    std::string key = BuildStateKey(state, &db_len);
    result_.stats.canonicalization_bytes += static_cast<long>(key.size());
    auto [id, fresh] = interner_.Intern(std::move(key));
    if (!fresh) ++result_.stats.interner_hits;
    int node = GraphNode(id);
    if (parent != kNoParent) RecordEdge(stack_[parent].node, node, via);
    if (!fresh && TestBit(on_path_, id)) {
      // A cycle in the execution graph: an infinitely long path exists.
      // The cycle target's subtree is still being enumerated, so every
      // ancestor's reachable-final memo is incomplete.
      result_.may_not_terminate = true;
      Taint(parent);
      stream_.resize(restore_stream);
      return;
    }
    MarkVisited(id);
    if (options_.dedup_subtrees && TestBit(memo_black_, id)) {
      ++result_.stats.dedup_hits;
      if (parent != kNoParent) {
        auto it = memo_finals_.find(id);
        if (it != memo_finals_.end()) {
          Frame& pf = stack_[parent];
          pf.reached_finals.insert(pf.reached_finals.end(),
                                   it->second.begin(), it->second.end());
        }
      }
      stream_.resize(restore_stream);
      return;
    }
    std::vector<RuleIndex> triggered = TriggeredRules(catalog_, state);
    if (triggered.empty()) {
      if (node >= 0) result_.node_is_final[node] = true;
      uint32_t fid = RecordFinal(interner_.key(id).substr(0, db_len),
                                 state.db);
      AddFinal(parent, fid);
      MemoizeFinal(id, fid);
      stream_.resize(restore_stream);
      return;
    }
    // The budget check comes AFTER the final-state check: a rule-free
    // state reached exactly as the budget trips is still a real final
    // state and must be recorded, not dropped.
    if (result_.steps_taken >= options_.max_total_steps) {
      result_.complete = false;
      Taint(parent);
      stream_.resize(restore_stream);
      return;
    }
    if (static_cast<int>(stack_.size()) >= options_.max_depth) {
      result_.complete = false;
      result_.may_not_terminate = true;  // conservative
      Taint(parent);
      stream_.resize(restore_stream);
      return;
    }
    SetBit(&on_path_, id, true);
    Frame frame;
    frame.state.emplace(std::move(state));
    frame.id = id;
    frame.node = node;
    frame.eligible = EligibleRules(catalog_, triggered);
    ReduceEligible(por_safe_, &frame.eligible,
                   &result_.stats.por_pruned_orders);
    frame.restore_stream = restore_stream;
    stack_.push_back(std::move(frame));
    result_.stats.peak_stack_depth = std::max(
        result_.stats.peak_stack_depth, static_cast<int>(stack_.size()));
  }

  /// Undo-backend analogue of Enter(): evaluates the state currently held
  /// in `cur_` (the one live database) without keying it by canonical
  /// string — the incremental fingerprint is the intern key. Every terminal
  /// outcome must undo what the caller set up, which `leave()` centralizes:
  /// revert this step's delta (when one is open) and roll the stream back.
  /// Non-terminal states instead push a frame that OWNS the open delta;
  /// PopFrame reverts it when the subtree is done.
  void EnterUndo(size_t parent, RuleIndex via, size_t restore_stream,
                 bool delta_open) {
    Hash128 fp = StateFingerprintUndo(*cur_);
    auto [id, fresh] = fp_interner_.Intern(fp);
    if (!fresh) ++result_.stats.interner_hits;
    int node = GraphNode(id);
    if (parent != kNoParent) RecordEdge(stack_[parent].node, node, via);
    auto leave = [&] {
      if (delta_open) {
        cur_->db.RevertDelta();
        pending_undo_.RevertToMark();
        NoteRevert();
      }
      stream_.resize(restore_stream);
    };
    if (!fresh && TestBit(on_path_, id)) {
      // A cycle in the execution graph: an infinitely long path exists.
      result_.may_not_terminate = true;
      Taint(parent);
      leave();
      return;
    }
    MarkVisited(id);
    if (options_.dedup_subtrees && TestBit(memo_black_, id)) {
      ++result_.stats.dedup_hits;
      if (parent != kNoParent) {
        auto it = memo_finals_.find(id);
        if (it != memo_finals_.end()) {
          Frame& pf = stack_[parent];
          pf.reached_finals.insert(pf.reached_finals.end(),
                                   it->second.begin(), it->second.end());
        }
      }
      leave();
      return;
    }
    std::vector<RuleIndex> triggered = TriggeredRules(catalog_, *cur_);
    if (triggered.empty()) {
      if (node >= 0) result_.node_is_final[node] = true;
      uint32_t fid = RecordFinalUndo(cur_->db);
      AddFinal(parent, fid);
      MemoizeFinal(id, fid);
      leave();
      return;
    }
    // The budget check comes AFTER the final-state check: a rule-free
    // state reached exactly as the budget trips is still a real final
    // state and must be recorded, not dropped.
    if (result_.steps_taken >= options_.max_total_steps) {
      result_.complete = false;
      Taint(parent);
      leave();
      return;
    }
    if (static_cast<int>(stack_.size()) >= options_.max_depth) {
      result_.complete = false;
      result_.may_not_terminate = true;  // conservative
      Taint(parent);
      leave();
      return;
    }
    SetBit(&on_path_, id, true);
    Frame frame;
    frame.owns_delta = delta_open;
    frame.id = id;
    frame.node = node;
    frame.eligible = EligibleRules(catalog_, triggered);
    ReduceEligible(por_safe_, &frame.eligible,
                   &result_.stats.por_pruned_orders);
    frame.restore_stream = restore_stream;
    stack_.push_back(std::move(frame));
    result_.stats.peak_stack_depth = std::max(
        result_.stats.peak_stack_depth, static_cast<int>(stack_.size()));
  }

  /// Handles a ROLLBACK edge: the path terminates in a synthetic state
  /// whose database is the initial database. The synthetic state is
  /// interned and counted like any other, so states_visited, the recorded
  /// graph, and the DOT output agree on node accounting.
  void EnterRollback(size_t parent, RuleIndex via) {
    if (!rollback_interned_) {
      if (undo_) {
        rollback_id_ =
            fp_interner_
                .Intern(MixWithSalt(initial_db_.ContentFingerprint(),
                                    kRollbackSalt))
                .first;
      } else {
        std::string db_key = initial_db_.CanonicalString();
        std::string key = "ROLLBACK#" + db_key;
        result_.stats.canonicalization_bytes += static_cast<long>(key.size());
        rollback_id_ = interner_.Intern(std::move(key)).first;
        rollback_db_key_ = std::move(db_key);
      }
      rollback_interned_ = true;
    }
    MarkVisited(rollback_id_);
    int node = GraphNode(rollback_id_);
    if (node >= 0) result_.node_is_final[node] = true;
    RecordEdge(stack_[parent].node, node, via);
    uint32_t fid = undo_ ? RecordFinalUndo(initial_db_)
                         : RecordFinal(rollback_db_key_, initial_db_);
    AddFinal(parent, fid);
    MemoizeFinal(rollback_id_, fid);
  }

  void PopFrame() {
    Frame& f = stack_.back();
    SetBit(&on_path_, f.id, false);
    if (undo_ && f.owns_delta) {
      cur_->db.RevertDelta();
      pending_undo_.RevertToMark();
      NoteRevert();
    }
    if (options_.dedup_subtrees) {
      if (!f.tainted) {
        std::sort(f.reached_finals.begin(), f.reached_finals.end());
        f.reached_finals.erase(
            std::unique(f.reached_finals.begin(), f.reached_finals.end()),
            f.reached_finals.end());
        SetBit(&memo_black_, f.id, true);
        memo_finals_[f.id] = f.reached_finals;
      }
      if (stack_.size() >= 2) {
        Frame& pf = stack_[stack_.size() - 2];
        pf.tainted |= f.tainted;
        pf.reached_finals.insert(pf.reached_finals.end(),
                                 f.reached_finals.begin(),
                                 f.reached_finals.end());
      }
    }
    stream_.resize(f.restore_stream);
    stack_.pop_back();
  }

  const RuleCatalog& catalog_;
  const Database& initial_db_;
  const ExplorerOptions& options_;
  /// POR safety bitvector (nullptr when reduction is off).
  const std::vector<bool>* por_safe_;
  /// True for ExplorerOptions::StateBackend::kUndoLog.
  bool undo_;
  ExplorationResult result_;

  StateInterner interner_;
  /// Undo backend: the one live state the whole DFS steps forward and
  /// reverts — the database via its own delta log, the pending
  /// transitions via `pending_undo_`.
  std::optional<RuleProcessingState> cur_;
  /// Undo backend: inverse log for `cur_->pending` mutations; one mark per
  /// rule consideration, reverted wherever the step's db delta is.
  TransitionUndoLog pending_undo_;
  FingerprintInterner fp_interner_;
  /// Undo backend: final databases, content fingerprint -> dense final id.
  std::unordered_map<Hash128, uint32_t, Hash128Hasher> final_fp_ids_;
  std::vector<Frame> stack_;
  std::vector<ObservableEvent> stream_;
  std::vector<bool> visited_;  // by interned id
  std::vector<bool> on_path_;  // by interned id
  long visited_count_ = 0;
  size_t last_key_size_ = 0;

  // Recorded-graph node ids, by interned id (kNodeUnassigned / -1 capped).
  std::vector<int> graph_node_;
  int next_graph_node_ = 0;

  // Final databases: canonical fingerprint -> dense final id.
  std::unordered_map<std::string, uint32_t> final_ids_;

  // Dedup-subtrees memo: black = subtree fully enumerated; finals =
  // final ids reachable from the state.
  std::vector<bool> memo_black_;
  std::unordered_map<uint32_t, std::vector<uint32_t>> memo_finals_;

  // Synthetic rollback state (interned lazily on the first rollback path).
  bool rollback_interned_ = false;
  uint32_t rollback_id_ = 0;
  std::string rollback_db_key_;
};

/// ------------------- Work-stealing parallel exploration -------------------
///
/// ExplorerOptions::num_threads >= 2 without dedup_subtrees / record_graph.
/// Workers run the classic depth-first walk on their OWN database + undo
/// log; every frame with two or more eligible rules is published as a
/// StealTask in the owner's deque. An idle worker steals the shallowest
/// task, replays its firing path from the root on its own state, and then
/// claims untaken children through the task's shared atomic cursor — so one
/// frame's children are partitioned between owner and thieves without any
/// barrier. States are interned in ONE shared striped set keyed by 128-bit
/// fingerprints, `max_total_steps` is a single atomic claimed per edge, and
/// POR reduces the eligible set at every state.
///
/// Determinism contract: the attempt either COMPLETES — in which case the
/// enumerated tree is exactly the classic tree (full enumeration never
/// prunes on the visited set; cycle cuts use the path-local on-path set the
/// replay reconstructs; POR reduction is a pure function of the state) and
/// every merged result field and counter equals the classic walk's — or it
/// ABORTS (budget / depth / stream-cap trip, error) and the caller discards
/// it and reruns the classic walk, whose truncation order is deterministic.
/// Work is never lost: an owner drains its own cursors even when a task is
/// stolen, so completion does not depend on any thief making progress.

/// A stealable DFS frame, shared between the worker that created it and
/// any thieves. `path` / `path_fps` let a thief reconstruct the frame's
/// state (and its cycle-detection prefix) from the root by replaying rule
/// firings on its own database; `next_child` is the one point of
/// coordination — every worker claims children via fetch_add.
struct StealTask {
  /// Rules fired from the exploration root to this state.
  std::vector<RuleIndex> path;
  /// Fingerprints of the states along the path, root first, THIS state
  /// last (path_fps.size() == path.size() + 1).
  std::vector<Hash128> path_fps;
  /// POR-reduced eligible rules at this state.
  std::vector<RuleIndex> eligible;
  /// Next unclaimed child index (indexes `eligible`).
  std::atomic<uint32_t> next_child{0};
};

class WorkStealingExplorer {
 public:
  WorkStealingExplorer(const RuleCatalog& catalog, const Database& initial_db,
                       const ExplorerOptions& options,
                       const std::vector<bool>* por_safe)
      : catalog_(catalog),
        initial_db_(initial_db),
        options_(options),
        por_safe_(por_safe),
        undo_(options.backend == ExplorerOptions::StateBackend::kUndoLog),
        num_workers_(static_cast<size_t>(options.num_threads)),
        deques_(num_workers_) {}

  Result<ExplorationResult> Run(const Transition& initial_transition) {
    auto start = std::chrono::steady_clock::now();
    root_state_.emplace(&catalog_.schema(), catalog_.num_rules());
    root_state_->db = initial_db_;
    for (Transition& t : root_state_->pending) t = initial_transition;
    // Rendered on this thread before any worker copies the root state, so
    // the copies start from clean canonical-string caches and workers
    // never touch a shared mutable one (same contract as sharded mode).
    size_t db_len = 0;
    root_key_ = CanonicalStateKey(*root_state_, &db_len);
    root_db_len_ = db_len;
    root_fp_ = undo_ ? StateFingerprintUndo(*root_state_)
                     : HashString128(root_key_);
    rollback_db_key_ = initial_db_.CanonicalString();
    initial_fp_ = initial_db_.ContentFingerprint();
    rollback_fp_ = undo_ ? MixWithSalt(initial_fp_, kRollbackSalt)
                         : HashString128("ROLLBACK#" + rollback_db_key_);
    rollback_key_bytes_ =
        static_cast<long>(9 /* "ROLLBACK#" */ + rollback_db_key_.size());

    locals_.resize(num_workers_);
    deques_.MarkActive();  // worker 0 owns the root region from the start
    {
      // Dedicated threads, NOT ThreadPool::ParallelFor: the pool counts
      // its chunks (`pool.chunks`, `pool.parallel_for_calls`), and a
      // chunk-per-worker loop would make those counters a function of
      // num_threads — breaking the byte-identical-counters contract that
      // CountersToJson keeps across pool sizes. A long-lived worker loop
      // is not chunked data-parallel work, so it stays off the pool's
      // books. Workers never throw (the explorer is Status-based); worker
      // 0 runs inline so the calling thread participates.
      std::vector<std::thread> workers;
      workers.reserve(num_workers_ - 1);
      for (size_t w = 1; w < num_workers_; ++w) {
        workers.emplace_back([this, w] { RunWorker(w); });
      }
      RunWorker(0);
      for (std::thread& t : workers) t.join();
    }
    if (!aborted_.load(std::memory_order_acquire)) {
      std::optional<ExplorationResult> merged = Merge(start);
      if (merged.has_value()) return std::move(*merged);
    }
    // Fallback: the attempt hit a limit (or an error) whose truncation
    // order is schedule-dependent. Discard it and rerun the classic walk,
    // whose result (including the incomplete flag, the kept streams, and
    // any error) is deterministic — so every thread count reports exactly
    // the classic outcome. The rerun is bounded by the same budget that
    // tripped, capping total work at roughly twice `max_total_steps`.
    ExplorerImpl impl(catalog_, initial_db_, options_, por_safe_);
    Result<ExplorationResult> result = impl.Run(initial_transition);
    if (result.ok()) {
      result.value().stats.parallel_fallbacks = 1;
      result.value().stats.steals = deques_.steals();
    }
    return result;
  }

 private:
  /// Cleanup record for one replayed prefix state: the undo-log delta to
  /// revert (uncounted — the replay duplicates edges whose accounting
  /// belongs to the worker that first explored them) and the on-path
  /// fingerprint to erase when the adopted region is done.
  struct ReplayMark {
    bool owns_delta = false;
    Hash128 fp;
  };

  struct Frame {
    /// Shared stealable cursor (frames with >= 2 eligible rules); null for
    /// the single-eligible fast path, which is never published.
    std::shared_ptr<StealTask> task;
    RuleIndex only = -1;
    bool only_taken = false;
    /// Undo backend: this frame's entry edge holds an open delta on the
    /// worker's live state (false for region roots — the exploration root
    /// or an adopted frame, whose replay deltas are unwound by Reset).
    bool owns_delta = false;
    /// Snapshot backend: the frame's full state.
    std::optional<RuleProcessingState> state;
    Hash128 fp;
    size_t restore_stream = 0;
  };

  /// Per-worker tallies and result fragments, merged after the join. Every
  /// field is a deterministic function of the (schedule-independent) tree
  /// partition EXCEPT the partition itself — which sums/unions away.
  struct WorkerLocal {
    long steps = 0;
    long interner_hits = 0;
    long delta_reverts = 0;
    long por_pruned = 0;
    long canonical_bytes = 0;
    int peak_depth = 0;
    std::unordered_map<Hash128, Database, Hash128Hasher> finals_undo;
    std::map<std::string, Database> finals_copy;
    std::set<std::string> streams;
  };

  /// One worker's run state: its own database (+ undo log), DFS stack,
  /// stream, and path-local cycle-detection set.
  struct Ctx {
    size_t w = 0;
    WorkerLocal* local = nullptr;
    std::optional<RuleProcessingState> cur;  // undo backend
    TransitionUndoLog pending_undo;          // undo backend
    std::vector<Frame> frames;
    std::vector<ReplayMark> replay;
    /// States below the bottom frame (replayed prefix length); the logical
    /// DFS depth — what the classic walk's stack_.size() would be — is
    /// base_depth + frames.size().
    size_t base_depth = 0;
    std::vector<ObservableEvent> stream;
    std::unordered_set<Hash128, Hash128Hasher> on_path;
    std::vector<RuleIndex> path_rules;  // root -> top frame
    std::vector<Hash128> path_fps;      // parallel to path_rules, + root
    size_t last_key_size = 0;           // snapshot key reserve hint
  };

  size_t Depth(const Ctx& ctx) const {
    return ctx.base_depth + ctx.frames.size();
  }

  void Abort() { aborted_.store(true, std::memory_order_release); }
  bool Aborted() const {
    return aborted_.load(std::memory_order_relaxed);
  }

  void RunWorker(size_t w) {
    Ctx ctx;
    ctx.w = w;
    ctx.local = &locals_[w];
    if (undo_) {
      ctx.cur.emplace(*root_state_);
      ctx.cur->pending_undo = &ctx.pending_undo;
    }
    if (w == 0) {
      EnterRoot(ctx);
      DriveLocal(ctx);
      if (Aborted()) return;
      ResetRegion(ctx);
      deques_.MarkIdle();
    }
    while (!Aborted()) {
      std::shared_ptr<StealTask> task = deques_.Steal(w);
      if (task != nullptr) {
        deques_.MarkActive();
        if (task->next_child.load(std::memory_order_relaxed) <
            task->eligible.size()) {
          STARBURST_TRACE_SPAN("explorer", "explore.steal_region");
          STARBURST_METRIC_HISTOGRAM(
              "explorer.steal_depth", RevertDepthBounds(),
              static_cast<int64_t>(task->path.size() + 1));
          Adopt(ctx, task);
          if (Aborted()) return;
          DriveLocal(ctx);
          if (Aborted()) return;
          ResetRegion(ctx);
        }
        deques_.MarkIdle();
        continue;
      }
      if (deques_.Quiescent()) break;
      std::this_thread::yield();
    }
  }

  /// Claims and expands children of the top frame until the local stack
  /// drains — the classic Drive() loop with the frame's next-child index
  /// replaced by the task's shared cursor, and the budget by one global
  /// atomic claimed per edge (a claim at or beyond the budget aborts; the
  /// classic walk's boundary behavior — a final state reached exactly at
  /// the trip is kept — is preserved because final children make no
  /// further claims, so a run with exactly `max_total_steps` edges still
  /// completes here).
  void DriveLocal(Ctx& ctx) {
    while (!ctx.frames.empty()) {
      if (Aborted()) return;
      Frame& f = ctx.frames.back();
      uint32_t k;
      size_t fan;
      if (f.task != nullptr) {
        fan = f.task->eligible.size();
        k = f.task->next_child.fetch_add(1, std::memory_order_relaxed);
      } else {
        fan = 1;
        k = f.only_taken ? 1u : 0u;
        f.only_taken = true;
      }
      if (k >= fan) {
        PopFrame(ctx);
        continue;
      }
      RuleIndex r = f.task != nullptr ? f.task->eligible[k] : f.only;
      long s = steps_claimed_.fetch_add(1, std::memory_order_relaxed);
      if (s >= options_.max_total_steps) {
        Abort();
        return;
      }
      ++ctx.local->steps;
      if (undo_) {
        ctx.pending_undo.Mark();
        ctx.cur->db.BeginDelta();
        auto step = ConsiderRule(catalog_, &*ctx.cur, r);
        if (!step.ok()) {
          Abort();
          return;
        }
        size_t mark = ctx.stream.size();
        for (const ObservableEvent& ev : step.value().observables) {
          ctx.stream.push_back(ev);
        }
        if (step.value().rollback) {
          ctx.cur->db.RevertDelta();
          ctx.pending_undo.RevertToMark();
          NoteRevert(ctx);
          RecordRollback(ctx);
          ctx.stream.resize(mark);
        } else {
          EnterUndo(ctx, r, mark);
        }
        continue;
      }
      bool last = k + 1 == fan && f.state.has_value();
      RuleProcessingState next = last ? std::move(*f.state) : *f.state;
      auto step = ConsiderRule(catalog_, &next, r);
      if (!step.ok()) {
        Abort();
        return;
      }
      size_t mark = ctx.stream.size();
      for (const ObservableEvent& ev : step.value().observables) {
        ctx.stream.push_back(ev);
      }
      if (step.value().rollback) {
        RecordRollback(ctx);
        ctx.stream.resize(mark);
      } else {
        EnterCopy(ctx, std::move(next), r, mark);
      }
    }
  }

  /// Evaluates the exploration root on worker 0 — the classic Enter() on a
  /// region root (no entry delta, restore-to-empty stream).
  void EnterRoot(Ctx& ctx) {
    bool fresh = visited_.Insert(root_fp_);
    if (!fresh) ++ctx.local->interner_hits;
    if (!undo_) {
      ctx.local->canonical_bytes += static_cast<long>(root_key_.size());
    }
    std::vector<RuleIndex> triggered =
        TriggeredRules(catalog_, *root_state_);
    if (triggered.empty()) {
      if (undo_) {
        ctx.local->finals_undo.try_emplace(initial_fp_, root_state_->db);
      } else {
        ctx.local->finals_copy.try_emplace(
            root_key_.substr(0, root_db_len_), root_state_->db);
      }
      RecordStream(ctx);
      return;
    }
    if (static_cast<int>(Depth(ctx)) >= options_.max_depth) {
      Abort();  // classic reports incomplete + may_not_terminate
      return;
    }
    Frame frame;
    frame.fp = root_fp_;
    frame.restore_stream = 0;
    if (!undo_) frame.state.emplace(*root_state_);
    PushFrame(ctx, std::move(frame), triggered, /*via=*/-1);
  }

  /// Undo-backend child entry: the live state sits at the child (delta
  /// open). Terminal outcomes revert; non-terminal ones push a frame that
  /// owns the delta.
  void EnterUndo(Ctx& ctx, RuleIndex via, size_t restore_stream) {
    Hash128 fp = StateFingerprintUndo(*ctx.cur);
    bool fresh = visited_.Insert(fp);
    if (!fresh) ++ctx.local->interner_hits;
    auto leave = [&] {
      ctx.cur->db.RevertDelta();
      ctx.pending_undo.RevertToMark();
      NoteRevert(ctx);
      ctx.stream.resize(restore_stream);
    };
    if (!fresh && ctx.on_path.count(fp) != 0) {
      may_not_terminate_.store(true, std::memory_order_relaxed);
      leave();
      return;
    }
    std::vector<RuleIndex> triggered = TriggeredRules(catalog_, *ctx.cur);
    if (triggered.empty()) {
      ctx.local->finals_undo.try_emplace(ctx.cur->db.ContentFingerprint(),
                                         ctx.cur->db);
      RecordStream(ctx);
      leave();
      return;
    }
    if (static_cast<int>(Depth(ctx)) >= options_.max_depth) {
      leave();
      Abort();
      return;
    }
    Frame frame;
    frame.owns_delta = true;
    frame.fp = fp;
    frame.restore_stream = restore_stream;
    PushFrame(ctx, std::move(frame), triggered, via);
  }

  /// Snapshot-backend child entry. The shared set is keyed by the hash of
  /// the canonical state key (the on-path set likewise), so cycle cuts and
  /// intern counts match the classic string-keyed walk up to 128-bit
  /// collisions — the same risk class the undo backend always carries.
  void EnterCopy(Ctx& ctx, RuleProcessingState&& state, RuleIndex via,
                 size_t restore_stream) {
    size_t db_len = 0;
    std::string key =
        CanonicalStateKey(state, &db_len, ctx.last_key_size + 32);
    ctx.last_key_size = key.size();
    ctx.local->canonical_bytes += static_cast<long>(key.size());
    Hash128 fp = HashString128(key);
    bool fresh = visited_.Insert(fp);
    if (!fresh) ++ctx.local->interner_hits;
    if (!fresh && ctx.on_path.count(fp) != 0) {
      may_not_terminate_.store(true, std::memory_order_relaxed);
      ctx.stream.resize(restore_stream);
      return;
    }
    std::vector<RuleIndex> triggered = TriggeredRules(catalog_, state);
    if (triggered.empty()) {
      ctx.local->finals_copy.try_emplace(key.substr(0, db_len), state.db);
      RecordStream(ctx);
      ctx.stream.resize(restore_stream);
      return;
    }
    if (static_cast<int>(Depth(ctx)) >= options_.max_depth) {
      ctx.stream.resize(restore_stream);
      Abort();
      return;
    }
    Frame frame;
    frame.state.emplace(std::move(state));
    frame.fp = fp;
    frame.restore_stream = restore_stream;
    PushFrame(ctx, std::move(frame), triggered, via);
  }

  /// Computes the (POR-reduced) eligible set, publishes multi-child frames
  /// to the steal deque, and pushes the frame. `via` is the rule fired
  /// into this state (-1 for the exploration root).
  void PushFrame(Ctx& ctx, Frame&& frame, std::vector<RuleIndex>& triggered,
                 RuleIndex via) {
    std::vector<RuleIndex> eligible = EligibleRules(catalog_, triggered);
    ReduceEligible(por_safe_, &eligible, &ctx.local->por_pruned);
    ctx.on_path.insert(frame.fp);
    if (via >= 0) ctx.path_rules.push_back(via);
    ctx.path_fps.push_back(frame.fp);
    if (eligible.size() >= 2) {
      auto task = std::make_shared<StealTask>();
      task->path = ctx.path_rules;
      task->path_fps = ctx.path_fps;
      task->eligible = std::move(eligible);
      frame.task = task;
      ctx.frames.push_back(std::move(frame));
      deques_.Push(ctx.w, std::move(task));
    } else {
      frame.only = eligible[0];
      ctx.frames.push_back(std::move(frame));
    }
    ctx.local->peak_depth = std::max(ctx.local->peak_depth,
                                     static_cast<int>(Depth(ctx)));
  }

  void PopFrame(Ctx& ctx) {
    Frame& f = ctx.frames.back();
    if (f.task != nullptr) deques_.RemoveBack(ctx.w, f.task.get());
    if (f.owns_delta) {
      ctx.cur->db.RevertDelta();
      ctx.pending_undo.RevertToMark();
      NoteRevert(ctx);
    }
    ctx.on_path.erase(f.fp);
    ctx.stream.resize(f.restore_stream);
    if (!ctx.path_rules.empty()) ctx.path_rules.pop_back();
    if (!ctx.path_fps.empty()) ctx.path_fps.pop_back();
    ctx.frames.pop_back();
  }

  /// Adopts a stolen task: seeds the on-path prefix from the recorded
  /// fingerprints, replays the firing path on this worker's own state
  /// (regenerating the stream prefix; replay steps are not counted — their
  /// accounting belongs to the worker that first explored those edges),
  /// and pushes the task's frame so the claim loop takes over.
  void Adopt(Ctx& ctx, const std::shared_ptr<StealTask>& task) {
    const size_t len = task->path.size();
    ctx.replay.push_back({/*owns_delta=*/false, task->path_fps[0]});
    ctx.on_path.insert(task->path_fps[0]);
    std::optional<RuleProcessingState> walker;
    if (!undo_) walker.emplace(*root_state_);
    for (size_t i = 0; i < len; ++i) {
      Result<StepOutcome> step = [&] {
        if (undo_) {
          ctx.pending_undo.Mark();
          ctx.cur->db.BeginDelta();
          return ConsiderRule(catalog_, &*ctx.cur, task->path[i]);
        }
        return ConsiderRule(catalog_, &*walker, task->path[i]);
      }();
      if (!step.ok()) {
        Abort();
        return;
      }
      for (const ObservableEvent& ev : step.value().observables) {
        ctx.stream.push_back(ev);
      }
      ctx.replay.push_back({/*owns_delta=*/undo_, task->path_fps[i + 1]});
      if (i + 1 < len) ctx.on_path.insert(task->path_fps[i + 1]);
    }
    ctx.base_depth = len;
    ctx.path_rules = task->path;
    ctx.path_fps.assign(task->path_fps.begin(), task->path_fps.end() - 1);
    Frame frame;
    frame.task = task;
    frame.fp = task->path_fps[len];
    frame.restore_stream = ctx.stream.size();
    if (!undo_) frame.state.emplace(std::move(*walker));
    ctx.on_path.insert(frame.fp);
    ctx.path_fps.push_back(frame.fp);
    ctx.frames.push_back(std::move(frame));
    ctx.local->peak_depth = std::max(ctx.local->peak_depth,
                                     static_cast<int>(Depth(ctx)));
    // Republish: the task stays stealable from THIS worker's deque too, so
    // a third worker can join the same frontier.
    deques_.Push(ctx.w, task);
  }

  /// Unwinds the replayed prefix after an adopted region completes: revert
  /// the replay deltas (uncounted), clear the on-path prefix, and return
  /// the worker to the exploration root.
  void ResetRegion(Ctx& ctx) {
    while (!ctx.replay.empty()) {
      const ReplayMark& mark = ctx.replay.back();
      if (mark.owns_delta) {
        ctx.cur->db.RevertDelta();
        ctx.pending_undo.RevertToMark();
      }
      ctx.on_path.erase(mark.fp);
      ctx.replay.pop_back();
    }
    ctx.base_depth = 0;
    ctx.stream.clear();
    ctx.path_rules.clear();
    ctx.path_fps.clear();
  }

  /// Counts an undo-log revert at the logical (classic-equivalent) depth.
  void NoteRevert(Ctx& ctx) {
    ++ctx.local->delta_reverts;
    STARBURST_METRIC_HISTOGRAM("explorer.revert_depth", RevertDepthBounds(),
                               static_cast<int64_t>(Depth(ctx)));
  }

  /// Handles a ROLLBACK edge. The synthetic rollback state is interned
  /// exactly once globally (matching the classic walk's cached intern);
  /// every rollback edge still records the final state and its stream.
  void RecordRollback(Ctx& ctx) {
    if (!rollback_claimed_.exchange(true, std::memory_order_acq_rel)) {
      bool fresh = visited_.Insert(rollback_fp_);
      if (!fresh) ++ctx.local->interner_hits;
      if (!undo_) ctx.local->canonical_bytes += rollback_key_bytes_;
    }
    if (undo_) {
      ctx.local->finals_undo.try_emplace(initial_fp_, initial_db_);
    } else {
      ctx.local->finals_copy.try_emplace(rollback_db_key_, initial_db_);
    }
    RecordStream(ctx);
  }

  /// Records the current path's stream in the worker-local set. A local
  /// set past the cap proves the global union is past the cap — the
  /// classic walk would truncate, so abort to it.
  void RecordStream(Ctx& ctx) {
    std::string s = StreamToString(ctx.stream);
    auto [it, fresh] = ctx.local->streams.insert(std::move(s));
    (void)it;
    if (fresh && static_cast<int>(ctx.local->streams.size()) >
                     options_.max_streams) {
      Abort();
    }
  }

  /// Merges the worker fragments into the classic-identical result.
  /// Returns nullopt when only the merge can see a truncation (stream
  /// union past the cap with every local set under it) — fall back.
  std::optional<ExplorationResult> Merge(
      std::chrono::steady_clock::time_point start) {
    ExplorationResult out;
    out.complete = true;
    out.may_not_terminate =
        may_not_terminate_.load(std::memory_order_relaxed);
    out.streams_evaluated = true;
    for (const WorkerLocal& local : locals_) {
      out.observable_streams.insert(local.streams.begin(),
                                    local.streams.end());
    }
    if (static_cast<int>(out.observable_streams.size()) >
        options_.max_streams) {
      return std::nullopt;
    }
    long merge_bytes = 0;
    if (undo_) {
      // Distinct final fingerprints across workers; canonical strings are
      // rendered once per distinct final, exactly like the classic undo
      // walk's fresh-fingerprint renders.
      std::unordered_set<Hash128, Hash128Hasher> seen;
      for (WorkerLocal& local : locals_) {
        for (auto& [fp, db] : local.finals_undo) {
          if (!seen.insert(fp).second) continue;
          std::string db_key = db.CanonicalString();
          merge_bytes += static_cast<long>(db_key.size());
          out.final_states.insert(db_key);
          out.final_databases.emplace(std::move(db_key), std::move(db));
        }
      }
    } else {
      for (WorkerLocal& local : locals_) {
        for (auto& [db_key, db] : local.finals_copy) {
          if (out.final_states.insert(db_key).second) {
            out.final_databases.emplace(db_key, std::move(db));
          }
        }
      }
    }
    for (const WorkerLocal& local : locals_) {
      out.steps_taken += local.steps;
      out.stats.interner_hits += local.interner_hits;
      out.stats.delta_reverts += local.delta_reverts;
      out.stats.por_pruned_orders += local.por_pruned;
      out.stats.canonicalization_bytes += local.canonical_bytes;
      out.stats.peak_stack_depth =
          std::max(out.stats.peak_stack_depth, local.peak_depth);
    }
    out.stats.canonicalization_bytes += merge_bytes;
    long interned = static_cast<long>(visited_.Size());
    out.states_visited = interned;
    out.stats.states_interned = interned;
    out.stats.shared_interner_hits = out.stats.interner_hits;
    out.stats.steals = deques_.steals();
    STARBURST_METRIC_HISTOGRAM("explorer.interner_contention",
                               ContentionBounds(),
                               visited_.ContendedLocks());
    out.stats.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return out;
  }

  const RuleCatalog& catalog_;
  const Database& initial_db_;
  const ExplorerOptions& options_;
  const std::vector<bool>* por_safe_;
  const bool undo_;
  const size_t num_workers_;

  std::optional<RuleProcessingState> root_state_;
  std::string root_key_;
  size_t root_db_len_ = 0;
  Hash128 root_fp_;
  Hash128 initial_fp_;
  Hash128 rollback_fp_;
  std::string rollback_db_key_;
  long rollback_key_bytes_ = 0;

  /// The shared concurrent interner: every state any worker visits, keyed
  /// by 128-bit fingerprint.
  StripedHashSet<Hash128, Hash128Hasher> visited_;
  WorkStealingDeques<StealTask> deques_;
  std::atomic<long> steps_claimed_{0};
  std::atomic<bool> aborted_{false};
  std::atomic<bool> may_not_terminate_{false};
  std::atomic<bool> rollback_claimed_{false};
  std::vector<WorkerLocal> locals_;
};

/// Legacy deterministic sharding, kept for dedup_subtrees mode (the
/// subtree memo is schedule-dependent under concurrent workers, so it
/// cannot ride the work-stealing pool): the root state is expanded once,
/// then each top-level subtree — one per initial eligible rule — is
/// explored independently with its own interner, own step-budget slice,
/// and the root seeded on-path for cycle detection. Shard results are
/// merged in rule order, so the merged result is identical for any worker
/// count. When POR (or the workload) reduces the root to a single eligible
/// rule, the walk IS the classic walk — run it directly instead of paying
/// pool setup for one shard.
Result<ExplorationResult> ExploreSharded(const RuleCatalog& catalog,
                                         const Database& initial_db,
                                         const Transition& initial_transition,
                                         const ExplorerOptions& options,
                                         const std::vector<bool>* por_safe) {
  auto start = std::chrono::steady_clock::now();
  RuleProcessingState root(&catalog.schema(), catalog.num_rules());
  root.db = initial_db;
  for (Transition& t : root.pending) t = initial_transition;
  const bool undo =
      options.backend == ExplorerOptions::StateBackend::kUndoLog;
  size_t db_len = 0;
  // Also renders (and caches) the canonical strings inside root.db, so the
  // per-shard copies below start from a clean cache and workers never
  // touch a shared mutable one — needed in BOTH backends: the undo backend
  // still renders canonical strings for final states, and a root that is
  // itself final takes the string path below.
  std::string root_key = CanonicalStateKey(root, &db_len);
  Hash128 root_fp;
  if (undo) root_fp = StateFingerprintUndo(root);

  ExplorationResult merged;
  merged.streams_evaluated = !options.dedup_subtrees;
  merged.states_visited = 1;
  merged.stats.states_interned = 1;
  merged.stats.canonicalization_bytes =
      static_cast<long>(undo ? 0 : root_key.size());

  std::vector<RuleIndex> triggered = TriggeredRules(catalog, root);
  if (triggered.empty()) {
    // The root is final; mirrors the classic explorer's terminal Enter.
    std::string fingerprint = root_key.substr(0, db_len);
    merged.final_databases.emplace(fingerprint, root.db);
    merged.final_states.insert(std::move(fingerprint));
    if (!options.dedup_subtrees) merged.observable_streams.insert("");
    merged.stats.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return merged;
  }
  // Terminal-bound checks in the classic Enter() order: budget, depth.
  if (options.max_total_steps <= 0) {
    merged.complete = false;
    return merged;
  }
  if (options.max_depth <= 0) {
    merged.complete = false;
    merged.may_not_terminate = true;  // conservative
    return merged;
  }

  std::vector<RuleIndex> eligible = EligibleRules(catalog, triggered);
  // The root state gets the same ample-set reduction as every in-shard
  // state, so classic and sharded POR prune the identical tree.
  ReduceEligible(por_safe, &eligible, &merged.stats.por_pruned_orders);
  if (eligible.size() == 1) {
    // POR (or the workload) reduced the root to one eligible rule: the one
    // "shard" is the whole walk, so run the classic explorer directly
    // instead of paying pool setup for a single worker. The classic walk
    // recounts por_pruned_orders from scratch; `merged` is discarded.
    ExplorerImpl impl(catalog, initial_db, options, por_safe);
    return impl.Run(initial_transition);
  }
  // Precomputed on this thread: the rollback fingerprint reads (and fills)
  // initial_db's mutable canonical-string caches.
  std::string rollback_fingerprint = initial_db.CanonicalString();

  struct ShardOutcome {
    Status error;
    ExplorationResult result;
  };
  std::vector<ShardOutcome> shards(eligible.size());
  ExplorerOptions shard_options = options;
  shard_options.num_threads = 0;
  shard_options.record_graph = false;
  // The shard's start state already sits one consideration below the root.
  shard_options.max_depth = options.max_depth - 1;
  // `max_total_steps` is divided across the shards (remainder to the first
  // shards in rule order) so the aggregate budget matches the classic
  // mode instead of silently handing every shard the full allowance. The
  // shard's slice funds its top-level consideration (the += 1 after the
  // sub-exploration) plus the subtree below it; a slice of 1 leaves a
  // sub-budget of 0, mirroring a classic child entered right at the trip
  // point (finals are still recorded — the budget check runs after the
  // final-state check).
  const long budget = options.max_total_steps;
  const long num_shards = static_cast<long>(eligible.size());

  ThreadPool pool(static_cast<int>(std::min(
      static_cast<size_t>(options.num_threads), eligible.size())));
  pool.ParallelFor(eligible.size(), 1, [&](size_t begin, size_t end) {
    for (size_t k = begin; k < end; ++k) {
      STARBURST_TRACE_SPAN("explorer", "explore.shard");
      RuleProcessingState state = root;
      auto step = ConsiderRule(catalog, &state, eligible[k]);
      if (!step.ok()) {
        shards[k].error = step.status();
        continue;
      }
      ExplorationResult& out = shards[k].result;
      if (step.value().rollback) {
        // Top-level rollback: the path ends at the initial database.
        out.steps_taken = 1;
        out.states_visited = 1;  // the synthetic rollback state
        out.stats.states_interned = 2;  // root seed + rollback (see merge)
        out.final_databases.emplace(rollback_fingerprint, initial_db);
        out.final_states.insert(rollback_fingerprint);
        if (!options.dedup_subtrees) {
          out.observable_streams.insert(
              StreamToString(step.value().observables));
        }
        continue;
      }
      ExplorerOptions sub_options = shard_options;
      sub_options.max_total_steps =
          budget / num_shards +
          (static_cast<long>(k) < budget % num_shards ? 1 : 0) - 1;
      ExplorerImpl impl(catalog, initial_db, sub_options, por_safe);
      if (undo) {
        impl.SeedRootOnPathFp(root_fp);
      } else {
        impl.SeedRootOnPath(root_key);
      }
      if (!options.dedup_subtrees) impl.SeedStream(step.value().observables);
      auto result = impl.RunFromState(std::move(state));
      if (!result.ok()) {
        shards[k].error = result.status();
        continue;
      }
      shards[k].result = std::move(result).value();
      shards[k].result.steps_taken += 1;  // the top-level consideration
    }
  });

  for (ShardOutcome& shard : shards) {
    if (!shard.error.ok()) return shard.error;
    ExplorationResult& r = shard.result;
    merged.complete = merged.complete && r.complete;
    merged.may_not_terminate =
        merged.may_not_terminate || r.may_not_terminate;
    merged.final_states.insert(r.final_states.begin(), r.final_states.end());
    for (auto& [fingerprint, db] : r.final_databases) {
      merged.final_databases.emplace(fingerprint, std::move(db));
    }
    merged.observable_streams.insert(r.observable_streams.begin(),
                                     r.observable_streams.end());
    merged.states_visited += r.states_visited;
    merged.steps_taken += r.steps_taken;
    STARBURST_METRIC_HISTOGRAM("explorer.shard_states", ShardStatesBounds(),
                               r.states_visited);
    // Counter aggregates: states shared between sibling subtrees are
    // counted once per shard; the seeded root id is discounted here.
    merged.stats.states_interned += r.stats.states_interned - 1;
    merged.stats.dedup_hits += r.stats.dedup_hits;
    merged.stats.interner_hits += r.stats.interner_hits;
    merged.stats.canonicalization_bytes += r.stats.canonicalization_bytes;
    merged.stats.delta_reverts += r.stats.delta_reverts;
    merged.stats.por_pruned_orders += r.stats.por_pruned_orders;
    merged.stats.peak_stack_depth = std::max(
        merged.stats.peak_stack_depth, r.stats.peak_stack_depth + 1);
  }
  // Strictly greater than the cap: a union of EXACTLY max_streams fully
  // enumerated streams is complete — only a stream beyond the cap
  // truncates (mirrors the classic RecordStream boundary, pinned by the
  // at-cap / cap-plus-one explorer tests).
  if (!options.dedup_subtrees &&
      static_cast<int>(merged.observable_streams.size()) >
          options.max_streams) {
    auto it = merged.observable_streams.begin();
    std::advance(it, options.max_streams);
    merged.observable_streams.erase(it, merged.observable_streams.end());
    merged.complete = false;
  }
  merged.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return merged;
}

/// Flushes one exploration's counters into the process registry. Called
/// once per exploration with the MERGED result, never per shard, so the
/// registered totals are identical whether the exploration ran classic or
/// sharded and for any worker count. Wall time goes to a gauge (cumulative
/// microseconds) — it is real time and thus outside the counter
/// determinism contract; states/sec is states_visited / wall_us.
void FlushExplorationMetrics(const ExplorationResult& r) {
  if (!metrics::Enabled()) return;
  STARBURST_METRIC_COUNT("explorer.explorations", 1);
  STARBURST_METRIC_COUNT("explorer.states_visited", r.states_visited);
  STARBURST_METRIC_COUNT("explorer.steps", r.steps_taken);
  STARBURST_METRIC_COUNT("explorer.states_interned",
                         r.stats.states_interned);
  STARBURST_METRIC_COUNT("explorer.interner_hits", r.stats.interner_hits);
  STARBURST_METRIC_COUNT("explorer.dedup_prunes", r.stats.dedup_hits);
  STARBURST_METRIC_COUNT("explorer.delta_reverts", r.stats.delta_reverts);
  STARBURST_METRIC_COUNT("explorer.por_pruned_orders",
                         r.stats.por_pruned_orders);
  STARBURST_METRIC_COUNT("explorer.canonical_bytes",
                         r.stats.canonicalization_bytes);
  STARBURST_METRIC_GAUGE_MAX("explorer.peak_stack_depth",
                             r.stats.peak_stack_depth);
  metrics::GetGauge("explorer.wall_us")
      ->Add(static_cast<int64_t>(r.stats.wall_seconds * 1e6));
  // Work-stealing scheduling telemetry. Gauges, not counters: steal counts
  // are schedule-dependent and the parallel-mode fields are zero in
  // classic mode, so none of them may enter the CountersToJson determinism
  // contract (which is byte-compared across explorer thread counts).
  if (r.stats.steals > 0) {
    metrics::GetGauge("explorer.steals")->Add(r.stats.steals);
  }
  if (r.stats.shared_interner_hits > 0) {
    metrics::GetGauge("explorer.shared_interner_hits")
        ->Add(r.stats.shared_interner_hits);
  }
  if (r.stats.parallel_fallbacks > 0) {
    metrics::GetGauge("explorer.parallel_fallbacks")
        ->Add(r.stats.parallel_fallbacks);
  }
}

/// Dispatches between the classic single-threaded explorer, the
/// work-stealing parallel mode, and the legacy sharded mode (dedup only).
Result<ExplorationResult> RunExploration(const RuleCatalog& catalog,
                                         const Database& initial_db,
                                         const Transition& initial_transition,
                                         const ExplorerOptions& options) {
  std::optional<metrics::ScopedCollect> collect;
  if (options.collect_metrics) collect.emplace();
  STARBURST_TRACE_SPAN("explorer", "explore");
  // The POR safety bitvector is computed once, before any shard spawns,
  // and shared read-only by every ExplorerImpl of this exploration.
  const std::vector<bool> por_safe_storage = PorSafeRules(catalog, options);
  const std::vector<bool>* por_safe =
      por_safe_storage.empty() ? nullptr : &por_safe_storage;
  Result<ExplorationResult> result = [&]() -> Result<ExplorationResult> {
    if (options.num_threads >= 1 && !options.record_graph) {
      if (options.dedup_subtrees) {
        // The subtree memo is schedule-dependent under concurrent workers
        // (memo soundness depends on visit order), so dedup mode keeps the
        // deterministic top-level sharding.
        return ExploreSharded(catalog, initial_db, initial_transition,
                              options, por_safe);
      }
      if (options.num_threads >= 2) {
        WorkStealingExplorer stealing(catalog, initial_db, options,
                                      por_safe);
        return stealing.Run(initial_transition);
      }
      // num_threads == 1: one worker is the classic walk — skip pool and
      // shared-structure setup entirely.
    }
    ExplorerImpl impl(catalog, initial_db, options, por_safe);
    return impl.Run(initial_transition);
  }();
  if (result.ok()) FlushExplorationMetrics(result.value());
  return result;
}

}  // namespace

Result<ExplorationResult> Explorer::Explore(const RuleCatalog& catalog,
                                            const Database& initial_db,
                                            const Transition& initial_transition,
                                            const ExplorerOptions& options) {
  return RunExploration(catalog, initial_db, initial_transition, options);
}

Result<ExplorationResult> Explorer::ExploreAfterStatements(
    const RuleCatalog& catalog, const Database& initial_db,
    const std::vector<std::string>& user_statements,
    const ExplorerOptions& options) {
  Database db = initial_db;
  Executor executor(&db);
  Transition initial_transition;
  for (const std::string& sql : user_statements) {
    STARBURST_ASSIGN_OR_RETURN(StmtPtr stmt, Parser::ParseStatement(sql));
    STARBURST_ASSIGN_OR_RETURN(ExecOutcome outcome,
                               executor.Execute(*stmt, nullptr, nullptr));
    if (outcome.rollback) {
      return Status::InvalidArgument(
          "user statements for exploration must not roll back");
    }
    STARBURST_RETURN_IF_ERROR(initial_transition.Compose(outcome.delta));
  }
  return RunExploration(catalog, db, initial_transition, options);
}

}  // namespace starburst
