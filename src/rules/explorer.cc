#include "rules/explorer.h"

#include <unordered_map>
#include <unordered_set>

#include "engine/exec.h"
#include "rulelang/parser.h"

namespace starburst {

namespace {

/// Serializes an observable stream for set-of-streams comparison.
std::string StreamToString(const std::vector<ObservableEvent>& stream) {
  std::string out;
  for (const ObservableEvent& ev : stream) {
    out += ev.kind == ObservableEvent::Kind::kRollback ? "R:" : "S:";
    out += ev.payload;
    out += "\n";
  }
  return out;
}

/// Canonical key of an execution state (database + per-rule pending
/// transitions). Rid-sensitive, so logically identical states reached with
/// different tuple identities get distinct keys — that only costs extra
/// exploration, never wrong results.
std::string StateKey(const RuleProcessingState& state) {
  std::string key = state.db.CanonicalString();
  key += "#";
  for (const Transition& t : state.pending) {
    key += t.CanonicalString();
    key += "|";
  }
  return key;
}

class ExplorerImpl {
 public:
  ExplorerImpl(const RuleCatalog& catalog, const Database& initial_db,
               const ExplorerOptions& options)
      : catalog_(catalog), initial_db_(initial_db), options_(options) {}

  Result<ExplorationResult> Run(const Transition& initial_transition) {
    RuleProcessingState state(&catalog_.schema(), catalog_.num_rules());
    state.db = initial_db_;
    for (Transition& t : state.pending) t = initial_transition;
    std::vector<ObservableEvent> stream;
    STARBURST_RETURN_IF_ERROR(Dfs(state, stream, 0));
    result_.states_visited = static_cast<long>(seen_.size());
    return std::move(result_);
  }

 private:
  void RecordFinal(const Database& db,
                   const std::vector<ObservableEvent>& stream) {
    std::string key = db.CanonicalString();
    if (result_.final_states.insert(key).second) {
      result_.final_databases.emplace(key, db);
    }
    if (static_cast<int>(result_.observable_streams.size()) <
        options_.max_streams) {
      result_.observable_streams.insert(StreamToString(stream));
    } else {
      result_.complete = false;
    }
  }

  /// Returns the recorded-graph node id for `key`, or -1 when recording is
  /// off or the cap was hit.
  int NodeId(const std::string& key) {
    if (!options_.record_graph) return -1;
    auto it = node_ids_.find(key);
    if (it != node_ids_.end()) return it->second;
    if (static_cast<int>(node_ids_.size()) >= options_.max_recorded_nodes) {
      result_.graph_truncated = true;
      return -1;
    }
    int id = static_cast<int>(node_ids_.size());
    node_ids_.emplace(key, id);
    result_.node_is_final.push_back(false);
    return id;
  }

  void RecordEdge(int from, int to, RuleIndex rule) {
    if (!options_.record_graph || from < 0 || to < 0) return;
    result_.graph_edges.push_back({from, to, rule});
  }

  Status Dfs(const RuleProcessingState& state,
             std::vector<ObservableEvent>& stream, int depth) {
    if (result_.steps_taken >= options_.max_total_steps) {
      result_.complete = false;
      return Status::OK();
    }
    std::string key = StateKey(state);
    int node = NodeId(key);
    if (on_path_.count(key) > 0) {
      // A cycle in the execution graph: an infinitely long path exists.
      result_.may_not_terminate = true;
      return Status::OK();
    }
    seen_.insert(key);

    std::vector<RuleIndex> triggered = TriggeredRules(catalog_, state);
    if (triggered.empty()) {
      if (node >= 0) result_.node_is_final[node] = true;
      RecordFinal(state.db, stream);
      return Status::OK();
    }
    if (depth >= options_.max_depth) {
      result_.complete = false;
      result_.may_not_terminate = true;  // conservative
      return Status::OK();
    }
    std::vector<RuleIndex> eligible = catalog_.priority().Choose(triggered);
    on_path_.insert(key);
    for (RuleIndex r : eligible) {
      ++result_.steps_taken;
      RuleProcessingState next = state;  // copy (db + pendings)
      auto step = ConsiderRule(catalog_, &next, r);
      if (!step.ok()) {
        on_path_.erase(key);
        return step.status();
      }
      size_t stream_before = stream.size();
      for (const ObservableEvent& ev : step.value().observables) {
        stream.push_back(ev);
      }
      if (step.value().rollback) {
        // Transaction aborted: final database is the initial database.
        int abort_node = NodeId("ROLLBACK#" + initial_db_.CanonicalString());
        if (abort_node >= 0) result_.node_is_final[abort_node] = true;
        RecordEdge(node, abort_node, r);
        RecordFinal(initial_db_, stream);
      } else {
        RecordEdge(node, NodeId(StateKey(next)), r);
        Status st = Dfs(next, stream, depth + 1);
        if (!st.ok()) {
          on_path_.erase(key);
          return st;
        }
      }
      stream.resize(stream_before);
    }
    on_path_.erase(key);
    return Status::OK();
  }

  const RuleCatalog& catalog_;
  const Database& initial_db_;
  const ExplorerOptions& options_;
  ExplorationResult result_;
  std::unordered_set<std::string> seen_;
  std::unordered_set<std::string> on_path_;
  std::unordered_map<std::string, int> node_ids_;
};

}  // namespace

Result<ExplorationResult> Explorer::Explore(const RuleCatalog& catalog,
                                            const Database& initial_db,
                                            const Transition& initial_transition,
                                            const ExplorerOptions& options) {
  ExplorerImpl impl(catalog, initial_db, options);
  return impl.Run(initial_transition);
}

Result<ExplorationResult> Explorer::ExploreAfterStatements(
    const RuleCatalog& catalog, const Database& initial_db,
    const std::vector<std::string>& user_statements,
    const ExplorerOptions& options) {
  Database db = initial_db;
  Executor executor(&db);
  Transition initial_transition;
  for (const std::string& sql : user_statements) {
    STARBURST_ASSIGN_OR_RETURN(StmtPtr stmt, Parser::ParseStatement(sql));
    STARBURST_ASSIGN_OR_RETURN(ExecOutcome outcome,
                               executor.Execute(*stmt, nullptr, nullptr));
    if (outcome.rollback) {
      return Status::InvalidArgument(
          "user statements for exploration must not roll back");
    }
    STARBURST_RETURN_IF_ERROR(initial_transition.Compose(outcome.delta));
  }
  ExplorerImpl impl(catalog, db, options);
  return impl.Run(initial_transition);
}

}  // namespace starburst
