#ifndef STARBURST_RULES_EXPLORER_H_
#define STARBURST_RULES_EXPLORER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/commutativity.h"
#include "common/status.h"
#include "engine/database.h"
#include "rules/processor.h"

namespace starburst {

/// Limits for exhaustive execution-graph exploration. Execution graphs can
/// be exponential in the number of unordered rules, so every dimension is
/// bounded; hitting a bound is reported, not an error.
struct ExplorerOptions {
  /// How the explorer manages per-branch state while backtracking.
  ///
  ///   kUndoLog       (default) One live database stepped forward with
  ///                  Database::BeginDelta and backtracked with
  ///                  RevertDelta; states are interned by incremental
  ///                  128-bit content fingerprints and canonical strings
  ///                  are materialized only for final-state reporting.
  ///                  Each step costs O(delta), not O(database).
  ///   kSnapshotCopy  The original whole-database value copy per DFS
  ///                  branch with full canonical-string intern keys. Kept
  ///                  as the differential-testing reference (see the
  ///                  delta_equivalence fuzz oracle); both backends
  ///                  produce identical results — fingerprint collisions
  ///                  aside, which at 128 bits are negligible and are
  ///                  cross-checked by that oracle.
  enum class StateBackend { kUndoLog, kSnapshotCopy };
  StateBackend backend = StateBackend::kUndoLog;
  /// Maximum depth (rule considerations) along any path.
  int max_depth = 64;
  /// Maximum number of path steps explored in total.
  long max_total_steps = 200000;
  /// Maximum number of distinct observable streams to collect.
  int max_streams = 1024;
  /// When true, the explorer records the execution graph's nodes and edges
  /// (up to max_recorded_nodes) for visualization — see
  /// ExecutionGraphToDot() in analysis/dot.h.
  bool record_graph = false;
  int max_recorded_nodes = 256;
  /// When true, a state whose entire subtree was already fully explored is
  /// not re-expanded: its reachable final states and may-not-terminate
  /// verdict are served from a per-state memo. Sound for `final_states`,
  /// `final_databases`, `may_not_terminate`, `complete`, and
  /// `unique_final_state()`; observable streams are path-sensitive (the
  /// stream prefix differs per path into a shared state), so
  /// `observable_streams` is left EMPTY in this mode. Use the default
  /// (false) when stream enumeration matters.
  bool dedup_subtrees = false;
  /// Opt-in parallel exploration. 0 (default) and 1 are the classic
  /// single-threaded walk (1 skips pool setup entirely). >= 2 runs a
  /// work-stealing search: each worker owns its own database + undo-log
  /// backend and walks depth-first; every frame with two or more eligible
  /// rules is published to the worker's steal deque, and an idle worker
  /// steals the shallowest one, replays its firing path from the root on
  /// its own state, and claims untaken children through the frame's shared
  /// atomic cursor. States are interned in ONE shared striped hash set
  /// keyed by 128-bit fingerprints (common/striped_set.h), so a state seen
  /// by any worker is counted once globally, and `max_total_steps` is a
  /// single atomic claimed per edge — no per-shard budget slices, so an
  /// unbalanced subtree can never trip a slice when the classic walk would
  /// fit. POR's ample-set reduction applies at every state.
  ///
  /// Results are UNCONDITIONALLY identical to the classic walk — final
  /// states, observable streams, `complete`, `may_not_terminate`,
  /// `steps_taken`, and every ExplorationStats counter except the
  /// scheduling telemetry (`steals`, `shared_interner_hits`,
  /// `parallel_fallbacks`), for any num_threads and either backend: a parallel attempt either completes
  /// (the enumerated tree is provably the classic tree) or is discarded
  /// and the classic walk is rerun once (budget / depth / stream-cap trips
  /// and errors are schedule-dependent mid-flight, so truncated results
  /// always come from the deterministic classic walk; the rerun is bounded
  /// by the same limits that tripped, and is counted in
  /// `ExplorationStats::parallel_fallbacks`). Two carve-outs use the
  /// legacy deterministic top-level sharding instead of stealing:
  /// `record_graph` (needs globally dense node ids — classic mode) and
  /// `dedup_subtrees` (the memo is schedule-dependent under concurrency).
  int num_threads = 0;
  /// Commutativity-guided partial-order reduction (ample-set style). At a
  /// state whose eligible set contains a "safe" rule — one that (a)
  /// commutes with every other rule in the catalog per the Lemma 6.1
  /// analysis plus `por_certifications`, (b) has no observable actions
  /// (so pruning a path never drops an observable stream — ROLLBACK
  /// counts as observable), (c) never triggers itself, and (d) carries no
  /// priority edge to or from any other rule — only the lowest-indexed
  /// safe rule is expanded; the sibling orders it proves equivalent are
  /// pruned and counted in `ExplorationStats::por_pruned_orders`.
  /// `final_states`, `final_databases`, `observable_streams`, `complete`,
  /// and `may_not_terminate` are preserved exactly (see
  /// docs/analysis_guide.md for the soundness argument); path-count
  /// counters (`steps_taken`, `states_visited`, ...) shrink.
  ///
  ///   kDefault  follow the STARBURST_POR environment variable ("1" or
  ///             "true" enables reduction; unset/other disables it).
  ///   kOff      enumerate every interleaving (historic behavior).
  ///   kCommute  prune via the commutativity matrix as described above.
  enum class PorMode { kDefault, kOff, kCommute };
  PorMode por = PorMode::kDefault;
  /// Extra user-certified commutative pairs OR-ed into the syntactic
  /// Lemma 6.1 matrix before the safe-rule computation (same semantics as
  /// Analyzer certifications; pair names are case-insensitive).
  CommutativityCertifications por_certifications;
  /// When true, process-wide metrics collection (common/metrics.h) is held
  /// on for the duration of the exploration; the explorer flushes its
  /// `explorer.*` counters into the registry at end of run. Equivalent to
  /// wrapping the call in metrics::ScopedCollect.
  bool collect_metrics = false;
};

/// Instrumentation counters from one exploration; surfaced through
/// ExplorationResult::stats, ExplorationStatsToJson() in
/// analysis/json_report.h, and the explorer benchmarks.
struct ExplorationStats {
  /// Distinct execution states interned (including the synthetic rollback
  /// state when a rollback path exists).
  long states_interned = 0;
  /// Subtree expansions skipped because the state's subtree was served
  /// from the memo (only in ExplorerOptions::dedup_subtrees mode).
  long dedup_hits = 0;
  /// Intern lookups that found an already-interned state (revisits and
  /// cycle hits). The interner hit rate is
  /// interner_hits / (interner_hits + states_interned). In sharded mode
  /// this aggregates per-shard work, like `states_visited`.
  long interner_hits = 0;
  /// Maximum depth of the explicit DFS stack.
  int peak_stack_depth = 0;
  /// Total bytes of canonical renderings built. In the snapshot-copy
  /// backend this is the full state-key volume; in the undo-log backend
  /// only final-state / rollback materializations are counted — per-visit
  /// fingerprints are maintained incrementally and render nothing.
  long canonicalization_bytes = 0;
  /// Undo-log backend only: number of delta reverts taken while
  /// backtracking (0 in the snapshot-copy backend).
  long delta_reverts = 0;
  /// Sibling expansion orders pruned by commutativity-guided partial-order
  /// reduction (ExplorerOptions::por). 0 when reduction is off or never
  /// applicable.
  long por_pruned_orders = 0;
  /// Work-stealing mode only: frames successfully stolen from another
  /// worker's deque. Schedule-dependent (surfaced as the explorer.steals
  /// gauge, never a determinism-contract counter); 0 in classic mode.
  long steals = 0;
  /// Work-stealing mode only: lookups in the shared concurrent interner
  /// that found an already-interned state. Equal to `interner_hits` on the
  /// parallel fast path (the shared set IS the interner there); 0 in
  /// classic mode.
  long shared_interner_hits = 0;
  /// Work-stealing mode only: 1 when the parallel attempt was discarded
  /// (budget / depth / stream-cap trip or error) and the classic walk was
  /// rerun to produce this result; else 0. Deterministic for a given
  /// workload + options.
  long parallel_fallbacks = 0;
  /// Wall-clock time spent exploring, in seconds.
  double wall_seconds = 0.0;
};

/// The result of exhaustively exploring every rule-processing execution
/// order from one initial state — the execution graph of Section 4.
struct ExplorationResult {
  /// True when exploration covered the whole graph within limits.
  bool complete = true;
  /// True when a cycle among execution states was found or the depth bound
  /// was hit: rule processing may not terminate.
  bool may_not_terminate = false;
  /// Canonical database fingerprints of the final states (distinct).
  /// Per Section 6: the rule set behaved confluently on this input iff
  /// there is exactly one entry and may_not_terminate is false.
  std::set<std::string> final_states;
  /// One representative database per final fingerprint.
  std::map<std::string, Database> final_databases;
  /// Distinct observable streams over all terminating paths, serialized
  /// (Section 8: observably deterministic iff exactly one).
  std::set<std::string> observable_streams;
  /// False when the exploration did not enumerate observable streams at
  /// all (ExplorerOptions::dedup_subtrees leaves `observable_streams`
  /// empty BY DESIGN — an empty set then means "not evaluated", not
  /// "deterministic"). Consumers must check this before deriving any
  /// observable-determinism verdict; `observable_determinism()` folds the
  /// check in.
  bool streams_evaluated = true;
  /// Distinct execution states visited, including the synthetic rollback
  /// state when a rollback path exists (consistent with the recorded
  /// graph's node accounting).
  long states_visited = 0;
  /// Total path steps taken.
  long steps_taken = 0;
  /// Instrumentation counters for this exploration.
  ExplorationStats stats;

  /// Recorded execution graph (only when ExplorerOptions::record_graph).
  /// Node ids are dense; an edge means "considering `rule` moves the state
  /// from `from` to `to`".
  struct RecordedEdge {
    int from = -1;
    int to = -1;
    RuleIndex rule = -1;
  };
  std::vector<RecordedEdge> graph_edges;
  /// Per-node: true when the node is a final state (no triggered rules, or
  /// reached via rollback).
  std::vector<bool> node_is_final;
  bool graph_truncated = false;

  bool unique_final_state() const {
    return !may_not_terminate && final_states.size() == 1;
  }

  /// Three-valued observable-determinism verdict (Section 8).
  /// kNotEvaluated when streams were not enumerated (dedup_subtrees mode):
  /// an empty `observable_streams` is never read as "deterministic" then.
  enum class ObservableDeterminism {
    kDeterministic,
    kNondeterministic,
    kNotEvaluated,
  };
  ObservableDeterminism observable_determinism() const {
    if (!streams_evaluated) return ObservableDeterminism::kNotEvaluated;
    if (may_not_terminate || observable_streams.size() > 1) {
      return ObservableDeterminism::kNondeterministic;
    }
    return ObservableDeterminism::kDeterministic;
  }
  bool unique_observable_stream() const {
    return observable_determinism() == ObservableDeterminism::kDeterministic;
  }
};

/// Serializes an observable stream in the explorer's set-of-streams form:
/// one line per event, "R:" (rollback) or "S:" (select) + payload + "\n".
/// ExplorationResult::observable_streams entries and the divergence-witness
/// stream fields (analysis/witness.h) use exactly this encoding.
std::string ObservableStreamToString(const std::vector<ObservableEvent>& stream);

/// Exhaustively enumerates every choice of eligible rule at every step,
/// starting from `initial_db` with every rule's pending transition equal to
/// `initial_transition` (the user-generated initial transition of
/// Section 4).
///
/// A ROLLBACK action terminates its path: the final database is
/// `initial_db` (transaction aborted) and the path's observable stream
/// includes the rollback event.
class Explorer {
 public:
  static Result<ExplorationResult> Explore(const RuleCatalog& catalog,
                                           const Database& initial_db,
                                           const Transition& initial_transition,
                                           const ExplorerOptions& options = {});

  /// Convenience: applies `user_statements` (as one initial transition) to
  /// a copy of `initial_db`, then explores. This mirrors "run these user
  /// operations, then process rules, in every possible order".
  static Result<ExplorationResult> ExploreAfterStatements(
      const RuleCatalog& catalog, const Database& initial_db,
      const std::vector<std::string>& user_statements,
      const ExplorerOptions& options = {});
};

}  // namespace starburst

#endif  // STARBURST_RULES_EXPLORER_H_
