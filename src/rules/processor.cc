#include "rules/processor.h"

#include <cstdio>

#include "common/trace.h"
#include "rulelang/parser.h"

namespace starburst {

namespace {

/// Inclusive upper edges for processor.assert_steps: rule considerations
/// per assertion point — the cascade (recursion) depth of rule processing.
const std::vector<int64_t>& AssertStepsBounds() {
  static const std::vector<int64_t>* bounds = new std::vector<int64_t>{
      1, 2, 4, 8, 16, 32, 64, 128, 256, 1024};
  return *bounds;
}

bool IsTriggered(const RuleCatalog& catalog, const RuleProcessingState& state,
                 RuleIndex r) {
  const RulePrelim& prelim = catalog.prelim().rule(r);
  const TableTransition* tt = state.pending[r].Find(prelim.table);
  if (tt == nullptr || tt->empty()) return false;
  // Probe the rule's Triggered-By set directly instead of materializing the
  // transition's net-effect OperationSet — equivalent to
  // Intersects(NetOperations(...), triggered_by) but allocation-free, and
  // this runs once per rule per visited explorer state.
  const OperationSet& by = prelim.triggered_by;
  if (tt->HasInserts() && by.count(Operation::Insert(prelim.table)) > 0) {
    return true;
  }
  if (tt->HasDeletes() && by.count(Operation::Delete(prelim.table)) > 0) {
    return true;
  }
  for (ColumnId c : tt->UpdatedColumns()) {
    if (by.count(Operation::Update(prelim.table, c)) > 0) return true;
  }
  return false;
}

}  // namespace

std::vector<RuleIndex> TriggeredRules(const RuleCatalog& catalog,
                                      const RuleProcessingState& state) {
  std::vector<RuleIndex> out;
  for (RuleIndex r = 0; r < catalog.num_rules(); ++r) {
    if (IsTriggered(catalog, state, r)) out.push_back(r);
  }
  return out;
}

std::vector<RuleIndex> EligibleRules(const RuleCatalog& catalog,
                                     const std::vector<RuleIndex>& triggered) {
  return catalog.priority().Choose(triggered);
}

Result<StepOutcome> ConsiderRule(const RuleCatalog& catalog,
                                 RuleProcessingState* state, RuleIndex r) {
  const RuleDef& rule = catalog.rule(r);
  const RulePrelim& prelim = catalog.prelim().rule(r);
  const TableDef& table_def = catalog.schema().table(prelim.table);

  // Snapshot the rule's triggering transition: condition and action see the
  // transition tables of the composite transition since last consideration.
  TableTransition triggering;
  if (const TableTransition* tt = state->pending[r].Find(prelim.table)) {
    triggering = *tt;
  }
  // The rule is now considered: it has processed its pending transition.
  if (state->pending_undo != nullptr) {
    state->pending[r].ClearLogged(state->pending_undo);
  } else {
    state->pending[r].Clear();
  }

  StepOutcome outcome;

  if (rule.condition != nullptr) {
    Evaluator eval(&state->db, &triggering, &table_def);
    STARBURST_ASSIGN_OR_RETURN(bool cond, eval.EvalPredicate(*rule.condition));
    if (!cond) {
      outcome.condition_was_true = false;
      return outcome;
    }
  }
  outcome.condition_was_true = true;

  Executor executor(&state->db);
  for (const StmtPtr& stmt : rule.actions) {
    STARBURST_ASSIGN_OR_RETURN(ExecOutcome exec,
                               executor.Execute(*stmt, &triggering, &table_def));
    for (ObservableEvent& ev : exec.observables) {
      outcome.observables.push_back(std::move(ev));
    }
    if (exec.rollback) {
      outcome.rollback = true;
      return outcome;  // caller restores state and aborts
    }
    // Tally net tuple changes for tracing.
    for (const auto& [table, tt] : exec.delta.tables()) {
      for (const auto& [rid, change] : tt.changes()) {
        switch (change.kind) {
          case NetChange::Kind::kInserted:
            ++outcome.tuples_inserted;
            break;
          case NetChange::Kind::kDeleted:
            ++outcome.tuples_deleted;
            break;
          case NetChange::Kind::kUpdated:
            ++outcome.tuples_updated;
            break;
        }
      }
    }
    // Compose the action's changes into every rule's pending transition
    // (including r's own, reset above): rules not yet considered see the
    // action as part of their composite transition.
    for (Transition& pending : state->pending) {
      if (state->pending_undo != nullptr) {
        STARBURST_RETURN_IF_ERROR(
            pending.ComposeLogged(exec.delta, state->pending_undo));
      } else {
        STARBURST_RETURN_IF_ERROR(pending.Compose(exec.delta));
      }
    }
    outcome.transition_compositions +=
        static_cast<int>(state->pending.size());
  }
  return outcome;
}

std::string TraceToString(const std::vector<ConsiderationTrace>& trace,
                          const RuleCatalog& catalog) {
  std::string out =
      "step  rule                 cond   ins  del  upd  trig  elig\n";
  for (size_t i = 0; i < trace.size(); ++i) {
    const ConsiderationTrace& t = trace[i];
    std::string name = t.rule >= 0 && t.rule < catalog.num_rules()
                           ? catalog.prelim().rule(t.rule).name
                           : "?";
    name.resize(20, ' ');
    char line[128];
    std::snprintf(line, sizeof(line), "%4zu  %s %s %5d %4d %4d %5d %5d%s\n",
                  i, name.c_str(), t.condition_was_true ? "true " : "false",
                  t.tuples_inserted, t.tuples_deleted, t.tuples_updated,
                  t.triggered_count, t.eligible_count,
                  t.rolled_back ? "  ROLLBACK" : "");
    out += line;
  }
  return out;
}

ChoiceStrategy FirstEligibleStrategy() {
  return [](const std::vector<RuleIndex>& eligible, int /*step*/) -> size_t {
    (void)eligible;
    return 0;
  };
}

ChoiceStrategy SeededRandomStrategy(uint64_t seed) {
  return [seed](const std::vector<RuleIndex>& eligible, int step) -> size_t {
    // SplitMix64 on (seed, step) — deterministic per (seed, step) pair.
    uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(step) + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z = z ^ (z >> 31);
    return static_cast<size_t>(z % eligible.size());
  };
}

RuleProcessor::RuleProcessor(Database* db, const RuleCatalog* catalog,
                             ProcessorOptions options)
    : db_(db),
      catalog_(catalog),
      options_(std::move(options)),
      pending_(catalog->num_rules()),
      enabled_(catalog->num_rules(), true) {
  if (!options_.choice) options_.choice = FirstEligibleStrategy();
}

Status RuleProcessor::SetRuleEnabled(const std::string& name, bool enabled) {
  RuleIndex r = catalog_->FindRule(name);
  if (r < 0) return Status::NotFound("no rule named '" + name + "'");
  enabled_[r] = enabled;
  return Status::OK();
}

void RuleProcessor::Begin() {
  if (in_transaction_) return;
  // O(1): rollback is an undo-log revert, not a whole-database copy.
  db_->BeginDelta();
  for (Transition& t : pending_) t.Clear();
  in_transaction_ = true;
}

Result<ExecOutcome> RuleProcessor::ExecuteUserStatement(const Stmt& stmt) {
  Begin();
  Executor executor(db_);
  STARBURST_ASSIGN_OR_RETURN(ExecOutcome outcome,
                             executor.Execute(stmt, nullptr, nullptr));
  if (outcome.rollback) {
    db_->RevertDelta();
    for (Transition& t : pending_) t.Clear();
    in_transaction_ = false;
    return outcome;
  }
  for (Transition& pending : pending_) {
    STARBURST_RETURN_IF_ERROR(pending.Compose(outcome.delta));
  }
  return outcome;
}

Result<ExecOutcome> RuleProcessor::ExecuteUserStatement(std::string_view sql) {
  STARBURST_ASSIGN_OR_RETURN(StmtPtr stmt, Parser::ParseStatement(sql));
  return ExecuteUserStatement(*stmt);
}

void RuleProcessor::NoteFiring(RuleIndex r) {
  if (!metrics::Enabled()) return;
  if (fired_counters_.empty()) {
    fired_counters_.resize(static_cast<size_t>(catalog_->num_rules()),
                           nullptr);
  }
  metrics::Counter*& counter = fired_counters_[static_cast<size_t>(r)];
  if (counter == nullptr) {
    counter = metrics::GetCounter("processor.fired." +
                                  catalog_->prelim().rule(r).name);
  }
  counter->Increment();
}

Result<ProcessingResult> RuleProcessor::AssertRules() {
  STARBURST_TRACE_SPAN("processor", "assert_rules");
  Begin();
  ProcessingResult result;
  long firings = 0;
  long compositions = 0;
  // One registry flush per assertion point, on every exit path; per-event
  // work stays in locals so the processing loop costs nothing extra.
  auto flush_metrics = [&]() {
    if (!metrics::Enabled()) return;
    STARBURST_METRIC_COUNT("processor.assert_rules", 1);
    STARBURST_METRIC_COUNT("processor.considerations", result.steps);
    STARBURST_METRIC_COUNT("processor.firings", firings);
    STARBURST_METRIC_COUNT("processor.transition_compositions",
                           compositions);
    STARBURST_METRIC_HISTOGRAM("processor.assert_steps", AssertStepsBounds(),
                               result.steps);
  };
  // Borrow the database into a processing state; pendings are shared via
  // move in/out to avoid copies.
  RuleProcessingState state(&db_->schema(), 0);
  state.db = std::move(*db_);
  state.pending = std::move(pending_);

  auto restore = [&]() {
    *db_ = std::move(state.db);
    pending_ = std::move(state.pending);
  };

  while (true) {
    std::vector<RuleIndex> triggered;
    for (RuleIndex r : TriggeredRules(*catalog_, state)) {
      if (enabled_[r]) triggered.push_back(r);
    }
    if (triggered.empty()) {
      result.terminated = true;
      break;
    }
    if (result.steps >= options_.max_steps) {
      restore();
      flush_metrics();
      return Status::LimitExceeded(
          "rule processing exceeded " + std::to_string(options_.max_steps) +
          " considerations; the rule set may not terminate");
    }
    std::vector<RuleIndex> eligible = EligibleRules(*catalog_, triggered);
    size_t pick = options_.choice(eligible, result.steps);
    if (pick >= eligible.size()) pick = 0;
    RuleIndex r = eligible[pick];
    result.considered.push_back(r);
    ++result.steps;
    if (options_.record_trace) {
      ConsiderationTrace entry;
      entry.rule = r;
      entry.triggered_count = static_cast<int>(triggered.size());
      entry.eligible_count = static_cast<int>(eligible.size());
      result.trace.push_back(entry);
    }

    auto step = ConsiderRule(*catalog_, &state, r);
    if (!step.ok()) {
      // A failed rule action may have applied part of its statements;
      // abort the transaction so no partial effects survive.
      state.db.RevertDelta();
      *db_ = std::move(state.db);
      for (Transition& t : state.pending) t.Clear();
      pending_ = std::move(state.pending);
      in_transaction_ = false;
      flush_metrics();
      return step.status();
    }
    compositions += step.value().transition_compositions;
    if (step.value().condition_was_true) {
      ++firings;
      NoteFiring(r);
    }
    if (options_.record_trace) {
      ConsiderationTrace& entry = result.trace.back();
      entry.condition_was_true = step.value().condition_was_true;
      entry.rolled_back = step.value().rollback;
      entry.tuples_inserted = step.value().tuples_inserted;
      entry.tuples_deleted = step.value().tuples_deleted;
      entry.tuples_updated = step.value().tuples_updated;
    }
    for (ObservableEvent& ev : step.value().observables) {
      result.observables.push_back(std::move(ev));
    }
    if (step.value().rollback) {
      // Restore to transaction start and abort.
      state.db.RevertDelta();
      *db_ = std::move(state.db);
      for (Transition& t : state.pending) t.Clear();
      pending_ = std::move(state.pending);
      in_transaction_ = false;
      result.rolled_back = true;
      result.terminated = true;
      STARBURST_METRIC_COUNT("processor.rollbacks", 1);
      flush_metrics();
      return result;
    }
  }
  restore();
  // Processing terminated: the next assertion point starts a fresh
  // composite transition for every rule.
  for (Transition& t : pending_) t.Clear();
  flush_metrics();
  return result;
}

void RuleProcessor::Commit() {
  if (in_transaction_) db_->CommitDelta();
  for (Transition& t : pending_) t.Clear();
  in_transaction_ = false;
}

}  // namespace starburst
