#ifndef STARBURST_RULES_PROCESSOR_H_
#define STARBURST_RULES_PROCESSOR_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "engine/database.h"
#include "engine/exec.h"
#include "engine/transition.h"
#include "rules/rule_catalog.h"

namespace starburst {

/// The mutable state of a rule-processing run: the database plus, for each
/// rule, the composite transition since the rule was last considered (or
/// since the assertion point if never considered) — the rule's "marker"
/// from Section 2 of the paper.
struct RuleProcessingState {
  Database db;
  std::vector<Transition> pending;  // one per rule
  /// When set, ConsiderRule logs the inverse of every pending-transition
  /// mutation here so the explorer's undo-log backend can backtrack by
  /// reverting instead of copying `pending`. Null for the plain processor.
  TransitionUndoLog* pending_undo = nullptr;

  RuleProcessingState(const Schema* schema, int num_rules)
      : db(schema), pending(num_rules) {}
};

/// Rules currently triggered: those whose pending transition's net effect
/// on their table intersects Triggered-By (ascending rule index).
std::vector<RuleIndex> TriggeredRules(const RuleCatalog& catalog,
                                      const RuleProcessingState& state);

/// The eligible subset of an already-computed triggered set: the maximal
/// elements under the priority partial order (Section 2's conflict set).
/// Ascending rule index, like `triggered`. Shared by the processor's
/// consideration loop and the explorer's per-state expansion.
std::vector<RuleIndex> EligibleRules(const RuleCatalog& catalog,
                                     const std::vector<RuleIndex>& triggered);

/// Outcome of considering one rule (one execution-graph edge, Section 4).
struct StepOutcome {
  bool condition_was_true = false;
  bool rollback = false;
  std::vector<ObservableEvent> observables;
  /// Net tuple changes performed by the action (0 when the condition was
  /// false or the action had no effect).
  int tuples_inserted = 0;
  int tuples_deleted = 0;
  int tuples_updated = 0;
  /// Pending-transition compositions performed by this step: one per
  /// (action statement, rule) pair — the work the "marker" maintenance of
  /// Section 2 does. Feeds the processor.transition_compositions metric.
  int transition_compositions = 0;
};

/// Considers rule `r` from `state`: checks its condition against its
/// triggering transition and, if true, executes its action, composing the
/// action's net changes into every rule's pending transition (including
/// r's own, which is reset first). This is exactly the rule-processing
/// step of Section 2.
Result<StepOutcome> ConsiderRule(const RuleCatalog& catalog,
                                 RuleProcessingState* state, RuleIndex r);

/// Picks one eligible rule; `eligible` is non-empty and ascending.
/// `step` is the 0-based consideration count, usable for seeded pseudo-
/// random strategies.
using ChoiceStrategy =
    std::function<size_t(const std::vector<RuleIndex>& eligible, int step)>;

/// Always picks the lowest-index eligible rule (deterministic default).
ChoiceStrategy FirstEligibleStrategy();

/// Seeded pseudo-random pick; different seeds explore different execution
/// orders of unordered rules.
ChoiceStrategy SeededRandomStrategy(uint64_t seed);

struct ProcessorOptions {
  /// Upper bound on rule considerations per assertion point; exceeding it
  /// fails with LimitExceeded (the run may be non-terminating).
  int max_steps = 10000;
  ChoiceStrategy choice;  // null = FirstEligibleStrategy()
  /// Record a per-consideration trace in ProcessingResult::trace.
  bool record_trace = false;
};

/// One recorded rule consideration (when ProcessorOptions::record_trace).
struct ConsiderationTrace {
  RuleIndex rule = -1;
  bool condition_was_true = false;
  bool rolled_back = false;
  int tuples_inserted = 0;
  int tuples_deleted = 0;
  int tuples_updated = 0;
  /// Rules triggered at the time this one was chosen.
  int triggered_count = 0;
  /// Rules eligible (maximal by priority) at the time.
  int eligible_count = 0;
};

/// Renders a trace as a table for the interactive environment.
std::string TraceToString(const std::vector<ConsiderationTrace>& trace,
                          const RuleCatalog& catalog);

/// The result of rule processing at one assertion point.
struct ProcessingResult {
  /// True when processing reached a state with no triggered rules.
  bool terminated = false;
  /// True when a rule action executed ROLLBACK: the database was restored
  /// to its state at transaction start and the transaction aborted.
  bool rolled_back = false;
  int steps = 0;
  std::vector<ObservableEvent> observables;
  /// The rules considered, in order (one entry per execution-graph edge).
  std::vector<RuleIndex> considered;
  /// Per-consideration details (only when ProcessorOptions::record_trace).
  std::vector<ConsiderationTrace> trace;
};

/// Executes user transactions with Starburst rule processing (Section 2).
///
/// Usage: Begin() (implicit on first statement), any number of
/// ExecuteUserStatement(), then AssertRules() at each assertion point;
/// Commit() ends the transaction. ROLLBACK (from a rule or the user)
/// restores the database to its state at Begin().
class RuleProcessor {
 public:
  RuleProcessor(Database* db, const RuleCatalog* catalog,
                ProcessorOptions options = {});

  /// Starts a transaction: opens an undo-log delta on the database and
  /// clears all pending transitions. No-op when already in a transaction.
  void Begin();

  /// Executes one user statement within the current transaction (starting
  /// one if needed), composing its changes into every rule's pending
  /// transition. A user ROLLBACK aborts the transaction immediately.
  Result<ExecOutcome> ExecuteUserStatement(const Stmt& stmt);

  /// Parses and executes `sql` (one statement).
  Result<ExecOutcome> ExecuteUserStatement(std::string_view sql);

  /// Runs rule processing at an assertion point. On normal termination the
  /// transaction stays open (more statements / assertion points may
  /// follow); on rollback it is aborted. A rule action that fails at
  /// runtime (e.g. division by zero) aborts the transaction — the database
  /// is restored to its state at Begin(), so no partial rule effects
  /// survive — and the error is returned. Exceeding max_steps returns
  /// LimitExceeded with the transaction left open so the caller can
  /// inspect the runaway state.
  Result<ProcessingResult> AssertRules();

  /// Ends the transaction, keeping its effects.
  void Commit();

  bool in_transaction() const { return in_transaction_; }

  /// Deactivates / reactivates a rule (Starburst's `deactivate rule`): a
  /// deactivated rule is never chosen for consideration. Its composite
  /// pending transition keeps accumulating within the transaction, so a
  /// later reactivation sees every change since the rule's last
  /// consideration or the last assertion point, whichever is later.
  /// NotFound for an unknown rule name.
  Status SetRuleEnabled(const std::string& name, bool enabled);
  bool IsRuleEnabled(RuleIndex r) const { return enabled_[r]; }

 private:
  /// Bumps the per-rule processor.fired.<name> counter (no-op while
  /// metrics collection is off; handles are cached per processor).
  void NoteFiring(RuleIndex r);

  Database* db_;
  const RuleCatalog* catalog_;
  ProcessorOptions options_;
  std::vector<Transition> pending_;
  std::vector<bool> enabled_;
  bool in_transaction_ = false;
  /// Lazily built per-rule metric handles (see NoteFiring).
  std::vector<metrics::Counter*> fired_counters_;
};

}  // namespace starburst

#endif  // STARBURST_RULES_PROCESSOR_H_
