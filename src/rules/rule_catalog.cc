#include "rules/rule_catalog.h"

#include "engine/bind.h"

namespace starburst {

Result<RuleCatalog> RuleCatalog::Build(const Schema* schema,
                                       std::vector<RuleDef> rules) {
  RuleCatalog catalog;
  catalog.schema_ = schema;
  STARBURST_ASSIGN_OR_RETURN(catalog.prelim_,
                             PrelimAnalysis::Compute(*schema, rules));
  STARBURST_ASSIGN_OR_RETURN(catalog.priority_,
                             PriorityOrder::Build(catalog.prelim_, rules));
  catalog.rules_ = std::move(rules);
  // Registration-time name resolution: compile column references in every
  // rule's condition and actions down to (scope slot, column index) so
  // per-row evaluation is an index load.
  for (RuleIndex r = 0; r < catalog.num_rules(); ++r) {
    const TableDef& rule_table =
        schema->table(catalog.prelim_.rule(r).table);
    CompileRuleBindings(*schema, &rule_table, &catalog.rules_[r]);
  }
  return catalog;
}

}  // namespace starburst
