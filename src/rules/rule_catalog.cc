#include "rules/rule_catalog.h"

namespace starburst {

Result<RuleCatalog> RuleCatalog::Build(const Schema* schema,
                                       std::vector<RuleDef> rules) {
  RuleCatalog catalog;
  catalog.schema_ = schema;
  STARBURST_ASSIGN_OR_RETURN(catalog.prelim_,
                             PrelimAnalysis::Compute(*schema, rules));
  STARBURST_ASSIGN_OR_RETURN(catalog.priority_,
                             PriorityOrder::Build(catalog.prelim_, rules));
  catalog.rules_ = std::move(rules);
  return catalog;
}

}  // namespace starburst
