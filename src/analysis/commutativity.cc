#include "analysis/commutativity.h"

#include <cstdint>

#include "common/metrics.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace starburst {

void CommutativityCertifications::Certify(const std::string& a,
                                          const std::string& b) {
  std::string x = ToLower(a);
  std::string y = ToLower(b);
  if (y < x) std::swap(x, y);
  pairs_.emplace(std::move(x), std::move(y));
}

bool CommutativityCertifications::Contains(const std::string& a,
                                           const std::string& b) const {
  std::string x = ToLower(a);
  std::string y = ToLower(b);
  if (y < x) std::swap(x, y);
  return pairs_.count({x, y}) > 0;
}

void CommutativityCertifications::Merge(
    const CommutativityCertifications& other) {
  pairs_.insert(other.pairs_.begin(), other.pairs_.end());
}

std::string NoncommutativityCause::Describe(const PrelimAnalysis& prelim,
                                            const Schema& schema) const {
  (void)schema;
  const std::string& a = prelim.rule(actor).name;
  const std::string& b = prelim.rule(affected).name;
  switch (condition) {
    case 1:
      return "'" + a + "' can trigger '" + b + "' (Lemma 6.1 condition 1)";
    case 2:
      return "'" + a + "' can untrigger '" + b + "' (Lemma 6.1 condition 2)";
    case 3:
      return "'" + a + "' writes data that '" + b +
             "' reads (Lemma 6.1 condition 3)";
    case 4:
      return "'" + a + "' inserts into a table that '" + b +
             "' deletes from or updates (Lemma 6.1 condition 4)";
    case 5:
      return "'" + a + "' and '" + b +
             "' update the same column (Lemma 6.1 condition 5)";
    default:
      return "unknown condition";
  }
}

CommutativityAnalyzer::CommutativityAnalyzer(
    const PrelimAnalysis& prelim, const Schema& schema,
    CommutativityCertifications certifications)
    : prelim_(prelim),
      schema_(schema),
      certifications_(std::move(certifications)) {
  int n = prelim_.num_rules();
  STARBURST_TRACE_SPAN("analysis", "pair_sweep");
  // Sparse sweep: rules with disjoint table footprints commute by
  // construction (see rule_index.h), so only overlap candidates are
  // checked. Pairs default to commuting; the sweep records the
  // noncommuting exceptions. The pairs_swept counter counts materialized
  // candidate pairs — at high overlap density it approaches n(n-1)/2, on
  // sparse catalogs it is far smaller. Incremented per row chunk so a
  // mid-run snapshot shows sweep progress; the total is a pure function of
  // the catalog, identical for any thread count.
  syntactically_commute_.assign(n, std::vector<bool>(n, true));
  const RuleFootprintIndex& index = prelim_.index();
  auto sweep_row = [&](RuleIndex i) {
    // Per-row noncommute list: candidates j > i only (symmetry mirrors
    // them), counted as the swept pairs for this row.
    std::vector<RuleIndex> noncommute;
    int64_t pairs = 0;
    for (RuleIndex j : index.OverlapCandidates(i)) {
      if (j <= i) continue;
      ++pairs;
      if (!SyntacticallyCommutePair(prelim_, i, j)) noncommute.push_back(j);
    }
    return std::make_pair(std::move(noncommute), pairs);
  };
  if (n < 16) {
    // Too few pairs to amortize a pool wakeup.
    for (RuleIndex i = 0; i < n; ++i) {
      auto [noncommute, pairs] = sweep_row(i);
      STARBURST_METRIC_COUNT("analysis.pairs_swept", pairs);
      for (RuleIndex j : noncommute) {
        syntactically_commute_[i][j] = syntactically_commute_[j][i] = false;
      }
    }
  } else {
    // Each (i, j) verdict is a pure function of (prelim, i, j), so rows
    // are swept in parallel. Workers fill disjoint per-row noncommute
    // lists (vector<bool> packs bits, so the matrix itself is written
    // sequentially afterwards); verdicts are identical for any thread
    // count.
    std::vector<std::vector<RuleIndex>> rows(n);
    ParallelFor(static_cast<size_t>(n), 1,
                [&](size_t row_begin, size_t row_end) {
                  int64_t pairs = 0;
                  for (size_t i = row_begin; i < row_end; ++i) {
                    auto [noncommute, row_pairs] =
                        sweep_row(static_cast<RuleIndex>(i));
                    rows[i] = std::move(noncommute);
                    pairs += row_pairs;
                  }
                  STARBURST_METRIC_COUNT("analysis.pairs_swept", pairs);
                });
    for (RuleIndex i = 0; i < n; ++i) {
      for (RuleIndex j : rows[i]) {
        syntactically_commute_[i][j] = syntactically_commute_[j][i] = false;
      }
    }
  }
  ApplyCertifications();
}

CommutativityAnalyzer::CommutativityAnalyzer(
    const PrelimAnalysis& prelim, const Schema& schema,
    CommutativityCertifications certifications,
    std::vector<std::vector<bool>> syntactic_matrix)
    : prelim_(prelim),
      schema_(schema),
      certifications_(std::move(certifications)),
      syntactically_commute_(std::move(syntactic_matrix)) {
  ApplyCertifications();
}

void CommutativityAnalyzer::ApplyCertifications() {
  // Certification-driven: start from the syntactic verdicts and upgrade
  // only the certified pairs (O(n²) per-pair name lookups would dominate
  // large catalogs).
  commute_ = syntactically_commute_;
  for (const auto& [a, b] : certifications_.pairs()) {
    RuleIndex i = prelim_.FindRule(a);
    RuleIndex j = prelim_.FindRule(b);
    if (i < 0 || j < 0) continue;  // certification for an absent rule
    commute_[i][j] = commute_[j][i] = true;
  }
}

bool CommutativityAnalyzer::SyntacticallyCommutePair(
    const PrelimAnalysis& prelim, RuleIndex i, RuleIndex j) {
  if (i == j) return true;
  return Directed(prelim, i, j).empty() && Directed(prelim, j, i).empty();
}

std::vector<NoncommutativityCause> CommutativityAnalyzer::Directed(
    const PrelimAnalysis& prelim_, RuleIndex ri, RuleIndex rj) {
  std::vector<NoncommutativityCause> causes;
  const RulePrelim& a = prelim_.rule(ri);
  const RulePrelim& b = prelim_.rule(rj);

  // Condition 1: rj ∈ Triggers(ri).
  if (prelim_.TriggersRule(ri, rj)) {
    causes.push_back({1, ri, rj});
  }
  // Condition 2: rj ∈ Can-Untrigger(Performs(ri)).
  if (prelim_.CanUntriggerRule(ri, rj)) {
    causes.push_back({2, ri, rj});
  }
  // Condition 3: ri's operations can affect what rj reads.
  if (WritesAnyOf(a.performs, b.reads)) {
    causes.push_back({3, ri, rj});
  }
  // Condition 4: ri's insertions can affect what rj updates or deletes.
  for (const Operation& op : a.performs) {
    if (op.kind != Operation::Kind::kInsert) continue;
    bool conflict = false;
    for (const Operation& other : b.performs) {
      if (other.table == op.table &&
          (other.kind == Operation::Kind::kDelete ||
           other.kind == Operation::Kind::kUpdate)) {
        conflict = true;
        break;
      }
    }
    if (conflict) {
      causes.push_back({4, ri, rj});
      break;
    }
  }
  // Condition 5: ri's updates can affect rj's updates (same column).
  bool update_conflict = false;
  for (const Operation& op : a.performs) {
    if (op.kind != Operation::Kind::kUpdate) continue;
    if (b.performs.count(op) > 0) {
      update_conflict = true;
      break;
    }
  }
  if (update_conflict) {
    causes.push_back({5, ri, rj});
  }
  return causes;
}

std::vector<NoncommutativityCause> CommutativityAnalyzer::ExplainPair(
    const PrelimAnalysis& prelim, RuleIndex i, RuleIndex j) {
  if (i == j) return {};
  std::vector<NoncommutativityCause> causes = Directed(prelim, i, j);
  std::vector<NoncommutativityCause> reversed = Directed(prelim, j, i);
  causes.insert(causes.end(), reversed.begin(), reversed.end());
  return causes;
}

std::vector<NoncommutativityCause> CommutativityAnalyzer::Explain(
    RuleIndex i, RuleIndex j) const {
  return ExplainPair(prelim_, i, j);
}

bool CommutativityAnalyzer::CertifiedOnly(RuleIndex i, RuleIndex j) const {
  return commute_[i][j] && !syntactically_commute_[i][j];
}

}  // namespace starburst
