#ifndef STARBURST_ANALYSIS_PARTIAL_CONFLUENCE_H_
#define STARBURST_ANALYSIS_PARTIAL_CONFLUENCE_H_

#include <vector>

#include "analysis/commutativity.h"
#include "analysis/confluence.h"
#include "analysis/termination.h"

namespace starburst {

/// Result of partial-confluence analysis w.r.t. a table set T'
/// (Theorem 7.2).
struct PartialConfluenceReport {
  /// The tables T' the rule set must agree on.
  std::vector<TableId> tables;
  /// Sig(T'): rules that modify T' plus, recursively, rules that do not
  /// commute with rules already in the set (Definition 7.1).
  std::vector<RuleIndex> significant;
  /// Termination of Sig(T') processed on its own (prerequisite of
  /// Theorem 7.2).
  TerminationReport termination;
  /// Confluence Requirement over the unordered pairs of Sig(T').
  ConfluenceReport confluence;
  /// Both prerequisites hold: all final states agree on T'.
  bool partially_confluent = false;
};

/// Partial confluence (Section 7): confluence restricted to the tables the
/// application actually cares about. Analyzed by computing the significant
/// rules Sig(T') and applying the Section 5/6 machinery to that subset.
class PartialConfluenceAnalyzer {
 public:
  PartialConfluenceAnalyzer(const CommutativityAnalyzer& commutativity,
                            const PriorityOrder& priority)
      : commutativity_(commutativity), priority_(priority) {}

  /// The Definition 7.1 fixpoint: rules significant with respect to
  /// `tables`. Uses the analyzer's (certification-aware) commutativity.
  std::vector<RuleIndex> SignificantRules(
      const std::vector<TableId>& tables) const;

  /// Full Theorem 7.2 pipeline: Sig(T'), termination of Sig(T'), then the
  /// Confluence Requirement over Sig(T').
  PartialConfluenceReport Analyze(
      const std::vector<TableId>& tables,
      const TerminationCertifications& termination_certs = {},
      int max_violations = -1) const;

 private:
  const CommutativityAnalyzer& commutativity_;
  const PriorityOrder& priority_;
};

}  // namespace starburst

#endif  // STARBURST_ANALYSIS_PARTIAL_CONFLUENCE_H_
