#ifndef STARBURST_ANALYSIS_PARTITION_H_
#define STARBURST_ANALYSIS_PARTITION_H_

#include <vector>

#include "analysis/prelim.h"
#include "analysis/priority.h"

namespace starburst {

/// Rule-set partitioning (Section 9, "Incremental methods"): rules fall in
/// the same partition when they reference a common table or are related by
/// a priority ordering. Rules from different partitions are processed at
/// the same time and may interleave, but have no effect on each other, so
/// termination/confluence analysis can be applied to each partition
/// separately and re-run only for partitions whose rules changed.
class Partitioner {
 public:
  /// Computes the partitions (each ascending; partitions ordered by their
  /// smallest rule index).
  static std::vector<std::vector<RuleIndex>> Partition(
      const PrelimAnalysis& prelim, const PriorityOrder& priority);

  /// Sanity check used by tests: no two rules in different partitions
  /// share a referenced table or an ordering.
  static bool IsValidPartitioning(
      const PrelimAnalysis& prelim, const PriorityOrder& priority,
      const std::vector<std::vector<RuleIndex>>& partitions);
};

}  // namespace starburst

#endif  // STARBURST_ANALYSIS_PARTITION_H_
