#include "analysis/prelim.h"

#include "common/strings.h"

namespace starburst {

namespace {

/// Walks a rule's condition and action ASTs, collecting Reads, Performs,
/// referenced tables, and validating names and transition-table usage.
class RuleWalker {
 public:
  RuleWalker(const Schema& schema, const RuleDef& rule, RulePrelim* out)
      : schema_(schema), rule_(rule), out_(out) {}

  Status Walk() {
    if (rule_.condition != nullptr) {
      STARBURST_RETURN_IF_ERROR(WalkExpr(*rule_.condition));
    }
    for (const StmtPtr& stmt : rule_.actions) {
      STARBURST_RETURN_IF_ERROR(WalkActionStmt(*stmt));
    }
    return Status::OK();
  }

 private:
  struct ScopeRel {
    std::string binding;  // lowercased
    TableId table;
  };

  Status SemErr(const std::string& msg) const {
    return Status::SemanticError("rule '" + rule_.name + "': " + msg);
  }

  void AddRead(TableId t, ColumnId c) {
    out_->reads.insert(TableColumn{t, c});
    out_->referenced_tables.insert(t);
  }

  void AddAllColumnsRead(TableId t) {
    for (ColumnId c = 0; c < schema_.table(t).num_columns(); ++c) {
      AddRead(t, c);
    }
  }

  /// Checks a transition-table reference against the rule's triggering
  /// operations and returns the rule's table id.
  Result<TableId> ValidateTransitionUse(TransitionTableKind kind) {
    bool ok = false;
    for (const TriggerEvent& ev : rule_.events) {
      switch (kind) {
        case TransitionTableKind::kInserted:
          ok = ok || ev.kind == TriggerEvent::Kind::kInserted;
          break;
        case TransitionTableKind::kDeleted:
          ok = ok || ev.kind == TriggerEvent::Kind::kDeleted;
          break;
        case TransitionTableKind::kNewUpdated:
        case TransitionTableKind::kOldUpdated:
          ok = ok || ev.kind == TriggerEvent::Kind::kUpdated;
          break;
      }
    }
    if (!ok) {
      return SemErr(std::string("references transition table '") +
                    TransitionTableKindToString(kind) +
                    "' but has no corresponding triggering operation");
    }
    return out_->table;
  }

  Status AddColumnRef(const std::string& qualifier, const std::string& column) {
    if (!qualifier.empty()) {
      // Transition table?
      if (auto kind = ParseTransitionTableKind(qualifier)) {
        STARBURST_ASSIGN_OR_RETURN(TableId t, ValidateTransitionUse(*kind));
        ColumnId c = schema_.table(t).FindColumn(column);
        if (c == kInvalidColumnId) {
          return SemErr("no column '" + column + "' in triggering table '" +
                        schema_.table(t).name() + "'");
        }
        AddRead(t, c);
        return Status::OK();
      }
      // Scope binding (FROM alias or table name), innermost first.
      std::string key = ToLower(qualifier);
      for (auto it = scope_.rbegin(); it != scope_.rend(); ++it) {
        if (it->binding == key) {
          ColumnId c = schema_.table(it->table).FindColumn(column);
          if (c == kInvalidColumnId) {
            return SemErr("no column '" + column + "' in relation '" +
                          qualifier + "'");
          }
          AddRead(it->table, c);
          return Status::OK();
        }
      }
      // Direct schema table reference outside FROM (conservative read).
      TableId t = schema_.FindTable(qualifier);
      if (t == kInvalidTableId) {
        return SemErr("unknown relation '" + qualifier + "'");
      }
      ColumnId c = schema_.table(t).FindColumn(column);
      if (c == kInvalidColumnId) {
        return SemErr("no column '" + column + "' in table '" + qualifier +
                      "'");
      }
      AddRead(t, c);
      return Status::OK();
    }
    // Unqualified: innermost scope relation that has the column.
    for (auto it = scope_.rbegin(); it != scope_.rend(); ++it) {
      ColumnId c = schema_.table(it->table).FindColumn(column);
      if (c != kInvalidColumnId) {
        AddRead(it->table, c);
        return Status::OK();
      }
    }
    // Conservative fallback: every table with a column of this name.
    bool found = false;
    for (const TableDef& t : schema_.tables()) {
      ColumnId c = t.FindColumn(column);
      if (c != kInvalidColumnId) {
        AddRead(t.id(), c);
        found = true;
      }
    }
    if (!found) {
      return SemErr("unresolved column '" + column + "'");
    }
    return Status::OK();
  }

  Status WalkExpr(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kLiteral:
        return Status::OK();
      case ExprKind::kColumnRef:
        return AddColumnRef(expr.qualifier, expr.column);
      case ExprKind::kUnary:
        return WalkExpr(*expr.left);
      case ExprKind::kBinary:
        STARBURST_RETURN_IF_ERROR(WalkExpr(*expr.left));
        return WalkExpr(*expr.right);
      case ExprKind::kExists:
      case ExprKind::kScalarSubquery:
        return WalkSelect(*expr.subquery);
      case ExprKind::kIn:
        STARBURST_RETURN_IF_ERROR(WalkExpr(*expr.left));
        return WalkSelect(*expr.subquery);
    }
    return Status::Internal("unknown expression kind");
  }

  Status WalkSelect(const SelectStmt& select) {
    size_t scope_before = scope_.size();
    for (const TableRef& ref : select.from) {
      ScopeRel rel;
      rel.binding = ToLower(ref.BindingName());
      if (ref.is_transition) {
        STARBURST_ASSIGN_OR_RETURN(rel.table,
                                   ValidateTransitionUse(ref.transition));
      } else {
        TableId t = schema_.FindTable(ref.table);
        if (t == kInvalidTableId) {
          return SemErr("unknown table '" + ref.table + "'");
        }
        rel.table = t;
        out_->referenced_tables.insert(t);
      }
      scope_.push_back(rel);
    }
    Status status = Status::OK();
    for (const SelectItem& item : select.items) {
      if (item.is_star) {
        // `*` reads every column of every FROM relation of this select.
        for (size_t s = scope_before; s < scope_.size(); ++s) {
          AddAllColumnsRead(scope_[s].table);
        }
      } else if (item.expr != nullptr) {
        status = WalkExpr(*item.expr);
        if (!status.ok()) break;
      }
    }
    if (status.ok() && select.where != nullptr) {
      status = WalkExpr(*select.where);
    }
    scope_.resize(scope_before);
    return status;
  }

  Status WalkActionStmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kSelect:
        out_->observable = true;
        return WalkSelect(*stmt.select);
      case StmtKind::kRollback:
        out_->observable = true;
        return Status::OK();
      case StmtKind::kInsert: {
        TableId t = schema_.FindTable(stmt.table);
        if (t == kInvalidTableId) {
          return SemErr("unknown table '" + stmt.table + "'");
        }
        out_->referenced_tables.insert(t);
        STARBURST_RETURN_IF_ERROR(ValidateColumns(t, stmt.insert_columns));
        out_->performs.insert(Operation::Insert(t));
        for (const auto& row : stmt.insert_rows) {
          for (const ExprPtr& e : row) {
            STARBURST_RETURN_IF_ERROR(WalkExpr(*e));
          }
        }
        if (stmt.insert_select != nullptr) {
          STARBURST_RETURN_IF_ERROR(WalkSelect(*stmt.insert_select));
        }
        return Status::OK();
      }
      case StmtKind::kDelete: {
        TableId t = schema_.FindTable(stmt.table);
        if (t == kInvalidTableId) {
          return SemErr("unknown table '" + stmt.table + "'");
        }
        out_->referenced_tables.insert(t);
        out_->performs.insert(Operation::Delete(t));
        if (stmt.where != nullptr) {
          // The WHERE predicate sees the target table's row.
          scope_.push_back(ScopeRel{ToLower(stmt.table), t});
          Status st = WalkExpr(*stmt.where);
          scope_.pop_back();
          return st;
        }
        return Status::OK();
      }
      case StmtKind::kUpdate: {
        TableId t = schema_.FindTable(stmt.table);
        if (t == kInvalidTableId) {
          return SemErr("unknown table '" + stmt.table + "'");
        }
        out_->referenced_tables.insert(t);
        scope_.push_back(ScopeRel{ToLower(stmt.table), t});
        Status status = Status::OK();
        for (const Assignment& a : stmt.assignments) {
          ColumnId c = schema_.table(t).FindColumn(a.column);
          if (c == kInvalidColumnId) {
            status = SemErr("no column '" + a.column + "' in table '" +
                            stmt.table + "'");
            break;
          }
          out_->performs.insert(Operation::Update(t, c));
          status = WalkExpr(*a.value);
          if (!status.ok()) break;
        }
        if (status.ok() && stmt.where != nullptr) {
          status = WalkExpr(*stmt.where);
        }
        scope_.pop_back();
        return status;
      }
      case StmtKind::kCreateTable:
        return SemErr("DDL is not allowed in a rule action");
    }
    return Status::Internal("unknown statement kind");
  }

  Status ValidateColumns(TableId t, const std::vector<std::string>& cols) {
    for (const std::string& name : cols) {
      if (schema_.table(t).FindColumn(name) == kInvalidColumnId) {
        return SemErr("no column '" + name + "' in table '" +
                      schema_.table(t).name() + "'");
      }
    }
    return Status::OK();
  }

  const Schema& schema_;
  const RuleDef& rule_;
  RulePrelim* out_;
  std::vector<ScopeRel> scope_;
};

/// True when the operations in `ops` can untrigger `prelim`'s rule: some
/// (D, t) ∈ ops while the rule is triggered by (I, t) or (U, t.c)
/// (Section 3, Can-Untrigger).
bool CanUntriggerWith(const OperationSet& ops, const RulePrelim& prelim) {
  for (const Operation& op : ops) {
    if (op.kind != Operation::Kind::kDelete) continue;
    for (const Operation& tb : prelim.triggered_by) {
      if (tb.table != op.table) continue;
      if (tb.kind == Operation::Kind::kInsert ||
          tb.kind == Operation::Kind::kUpdate) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

Result<RulePrelim> PrelimAnalysis::ComputeRule(const Schema& schema,
                                               const RuleDef& rule) {
  RulePrelim prelim;
  prelim.name = rule.name;
  TableId t = schema.FindTable(rule.table);
  if (t == kInvalidTableId) {
    return Status::SemanticError("rule '" + rule.name + "': unknown table '" +
                                 rule.table + "'");
  }
  prelim.table = t;
  prelim.referenced_tables.insert(t);
  if (rule.events.empty()) {
    return Status::SemanticError("rule '" + rule.name +
                                 "' has no triggering operations");
  }
  // Triggered-By from the transition predicate.
  for (const TriggerEvent& ev : rule.events) {
    switch (ev.kind) {
      case TriggerEvent::Kind::kInserted:
        prelim.triggered_by.insert(Operation::Insert(t));
        break;
      case TriggerEvent::Kind::kDeleted:
        prelim.triggered_by.insert(Operation::Delete(t));
        break;
      case TriggerEvent::Kind::kUpdated:
        if (ev.columns.empty()) {
          for (ColumnId c = 0; c < schema.table(t).num_columns(); ++c) {
            prelim.triggered_by.insert(Operation::Update(t, c));
          }
        } else {
          for (const std::string& col : ev.columns) {
            ColumnId c = schema.table(t).FindColumn(col);
            if (c == kInvalidColumnId) {
              return Status::SemanticError("rule '" + rule.name +
                                           "': no column '" + col +
                                           "' in table '" + rule.table + "'");
            }
            prelim.triggered_by.insert(Operation::Update(t, c));
          }
        }
        break;
    }
  }
  RuleWalker walker(schema, rule, &prelim);
  STARBURST_RETURN_IF_ERROR(walker.Walk());
  return prelim;
}

std::vector<RuleIndex> PrelimAnalysis::ComputeTriggersRow(RuleIndex i) const {
  // A rule rj can only be triggered by operations on its own table, so the
  // targets of i's edges all live in the RulesOn() buckets of the tables i
  // performs operations on — each candidate appears in exactly one bucket.
  std::vector<RuleIndex> row;
  TableId last = kInvalidTableId;
  for (const Operation& op : prelims_[i].performs) {
    if (op.table == last) continue;  // performs is table-ordered
    last = op.table;
    for (RuleIndex j : index_.RulesOn(op.table)) {
      if (Intersects(prelims_[i].performs, prelims_[j].triggered_by)) {
        row.push_back(j);
      }
    }
  }
  // Invariant: Triggers() rows are sorted ascending. TriggersRule() and
  // TriggeringGraph::HasEdge() binary-search them.
  std::sort(row.begin(), row.end());
  return row;
}

Result<PrelimAnalysis> PrelimAnalysis::Compute(
    const Schema& schema, const std::vector<RuleDef>& rules) {
  PrelimAnalysis analysis;
  analysis.prelims_.reserve(rules.size());
  std::set<std::string> names;
  for (const RuleDef& rule : rules) {
    if (!names.insert(ToLower(rule.name)).second) {
      return Status::SemanticError("duplicate rule name '" + rule.name + "'");
    }
    STARBURST_ASSIGN_OR_RETURN(RulePrelim prelim, ComputeRule(schema, rule));
    analysis.prelims_.push_back(std::move(prelim));
  }

  // Triggers relation, enumerated sparsely through the footprint index
  // instead of the all-pairs product.
  int n = analysis.num_rules();
  analysis.index_.Build(analysis.prelims_);
  analysis.triggers_.reserve(n);
  for (RuleIndex i = 0; i < n; ++i) {
    analysis.triggers_.push_back(analysis.ComputeTriggersRow(i));
    analysis.name_index_[ToLower(analysis.prelims_[i].name)] = i;
  }
  return analysis;
}

RuleIndex PrelimAnalysis::AppendComputed(RulePrelim prelim) {
  RuleIndex n = num_rules();
  prelims_.push_back(std::move(prelim));
  index_.Append(prelims_[n]);
  name_index_[ToLower(prelims_[n].name)] = n;
  // In-edges: only rules touching the new rule's table can perform an
  // operation that triggers it. Appending index n keeps rows sorted.
  for (RuleIndex j : index_.RulesTouching(prelims_[n].table)) {
    if (j != n && Intersects(prelims_[j].performs, prelims_[n].triggered_by)) {
      triggers_[j].push_back(n);
    }
  }
  // Out-edges (including a possible self-loop).
  triggers_.push_back(ComputeTriggersRow(n));
  return n;
}

void PrelimAnalysis::RemoveRuleAt(RuleIndex r) {
  // Drop in-edges to r and close the index gap; rows stay sorted because
  // the erase/decrement pass preserves relative order.
  for (std::vector<RuleIndex>& row : triggers_) {
    auto it = std::lower_bound(row.begin(), row.end(), r);
    if (it != row.end() && *it == r) it = row.erase(it);
    for (; it != row.end(); ++it) --*it;
  }
  triggers_.erase(triggers_.begin() + r);
  name_index_.erase(ToLower(prelims_[r].name));
  for (auto& [name, idx] : name_index_) {
    if (idx > r) --idx;
  }
  prelims_.erase(prelims_.begin() + r);
  index_.Remove(r);
}

std::vector<RuleIndex> PrelimAnalysis::CanUntrigger(
    const OperationSet& ops) const {
  std::vector<RuleIndex> out;
  for (RuleIndex j = 0; j < num_rules(); ++j) {
    if (CanUntriggerWith(ops, prelims_[j])) out.push_back(j);
  }
  return out;
}

bool PrelimAnalysis::CanUntriggerRule(RuleIndex ri, RuleIndex rj) const {
  return CanUntriggerWith(prelims_[ri].performs, prelims_[rj]);
}

PrelimAnalysis PrelimAnalysis::ExtendWithObservableTable(
    TableId obs_table) const {
  PrelimAnalysis extended = *this;
  for (RulePrelim& prelim : extended.prelims_) {
    if (!prelim.observable) continue;
    prelim.performs.insert(Operation::Insert(obs_table));
    prelim.reads.insert(TableColumn{obs_table, 0});
  }
  // Rebuild the footprint index: every observable rule now touches Obs, so
  // observable pairs must surface as overlap candidates.
  extended.index_.Build(extended.prelims_);
  return extended;
}

RuleIndex PrelimAnalysis::FindRule(const std::string& name) const {
  auto it = name_index_.find(ToLower(name));
  return it == name_index_.end() ? -1 : it->second;
}

}  // namespace starburst
