#ifndef STARBURST_ANALYSIS_PRELIM_H_
#define STARBURST_ANALYSIS_PRELIM_H_

#include <algorithm>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/ops.h"
#include "analysis/rule_index.h"
#include "catalog/catalog.h"
#include "common/status.h"
#include "rulelang/ast.h"

namespace starburst {

/// The per-rule sets of Section 3, computed by syntactic analysis.
struct RulePrelim {
  std::string name;
  /// The rule's table (the table named in `on`).
  TableId table = kInvalidTableId;
  /// Triggered-By(r): operations on the rule's table that trigger it.
  OperationSet triggered_by;
  /// Performs(r): operations the rule's action may perform.
  OperationSet performs;
  /// Reads(r): columns the rule may read in its condition or action,
  /// including triggering-table columns read through transition tables.
  TableColumnSet reads;
  /// Observable(r): whether the action may be observable (contains a
  /// rollback or a top-level data retrieval).
  bool observable = false;
  /// Every table mentioned anywhere in the rule (for partitioning).
  std::set<TableId> referenced_tables;
};

/// Preliminary analysis of a rule set (Section 3): Triggered-By, Performs,
/// Triggers, Reads, Can-Untrigger, Observable.
///
/// The analysis is purely syntactic and conservative: unqualified column
/// references that cannot be resolved against an enclosing FROM scope are
/// attributed to *every* schema table with a column of that name.
class PrelimAnalysis {
 public:
  /// Computes the sets for `rules` against `schema`. Fails with
  /// SemanticError when a rule names an unknown table/column, or reads a
  /// transition table that does not correspond to one of its triggering
  /// operations (Section 2: "a rule may refer only to transition tables
  /// corresponding to its triggering operations").
  static Result<PrelimAnalysis> Compute(const Schema& schema,
                                        const std::vector<RuleDef>& rules);

  /// Validates and analyzes a single rule in isolation — the per-rule body
  /// of Compute(), minus the duplicate-name check (which needs the whole
  /// set). The incremental analyzer builds on this so a k-rule catalog
  /// costs k single-rule validations, not O(k²).
  static Result<RulePrelim> ComputeRule(const Schema& schema,
                                        const RuleDef& rule);

  int num_rules() const { return static_cast<int>(prelims_.size()); }
  const RulePrelim& rule(RuleIndex i) const { return prelims_[i]; }
  const std::vector<RulePrelim>& rules() const { return prelims_; }

  /// Triggers(r): rules that can become triggered by r's action
  /// (Performs(r) ∩ Triggered-By(r') ≠ ∅), possibly including r itself.
  /// Rows are sorted ascending (see the build-site invariant note in
  /// prelim.cc); TriggeringGraph::HasEdge binary-searches them.
  const std::vector<RuleIndex>& Triggers(RuleIndex r) const {
    return triggers_[r];
  }

  /// True iff rj ∈ Triggers(ri). O(log |Triggers(ri)|) over the sorted
  /// adjacency row (no dense matrix is materialized).
  bool TriggersRule(RuleIndex ri, RuleIndex rj) const {
    const std::vector<RuleIndex>& row = triggers_[ri];
    return std::binary_search(row.begin(), row.end(), rj);
  }

  /// Can-Untrigger(O): rules that can be untriggered by the operations in
  /// `ops` — a rule triggered by insertions into or updates of a table t
  /// can be untriggered when O deletes from t.
  std::vector<RuleIndex> CanUntrigger(const OperationSet& ops) const;

  /// True iff rj ∈ Can-Untrigger(Performs(ri)).
  bool CanUntriggerRule(RuleIndex ri, RuleIndex rj) const;

  /// Finds a rule by (case-insensitive) name; -1 if absent.
  RuleIndex FindRule(const std::string& name) const;

  /// The inverted table -> rules index over the current rule set, used for
  /// sparse pair enumeration (only overlapping pairs can be
  /// noncommutative — see rule_index.h).
  const RuleFootprintIndex& index() const { return index_; }

  /// Appends an already-validated rule prelim (from ComputeRule) as the new
  /// highest index, updating the Triggers relation and the footprint index
  /// incrementally. Precondition: the name is not already present.
  RuleIndex AppendComputed(RulePrelim prelim);

  /// Removes rule `r`; every index above `r` shifts down by one. The
  /// Triggers relation and the footprint index are updated in place.
  void RemoveRuleAt(RuleIndex r);

  /// Returns a copy with the Section 8 extensions Reads_obs / Performs_obs:
  /// every observable rule additionally performs (I, Obs) and reads Obs.c,
  /// where Obs is the fictional log table identified by `obs_table` (use a
  /// pseudo id outside the schema, e.g. schema.num_tables()). The Triggers
  /// relation is unchanged (no rule is triggered by operations on Obs);
  /// the footprint index is rebuilt so observable rules overlap on Obs.
  PrelimAnalysis ExtendWithObservableTable(TableId obs_table) const;

 private:
  /// Out-edges of rule `i` via the index: candidates are the rules defined
  /// on a table that i performs operations on. Returns a sorted row.
  std::vector<RuleIndex> ComputeTriggersRow(RuleIndex i) const;

  std::vector<RulePrelim> prelims_;
  std::vector<std::vector<RuleIndex>> triggers_;
  RuleFootprintIndex index_;
  std::unordered_map<std::string, RuleIndex> name_index_;  // lowercased
};

}  // namespace starburst

#endif  // STARBURST_ANALYSIS_PRELIM_H_
