#include "analysis/partition.h"

#include <algorithm>
#include <map>
#include <numeric>

namespace starburst {

namespace {

class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

bool ShareTable(const RulePrelim& a, const RulePrelim& b) {
  for (TableId t : a.referenced_tables) {
    if (b.referenced_tables.count(t) > 0) return true;
  }
  return false;
}

}  // namespace

std::vector<std::vector<RuleIndex>> Partitioner::Partition(
    const PrelimAnalysis& prelim, const PriorityOrder& priority) {
  int n = prelim.num_rules();
  UnionFind uf(n);
  // Union rules sharing a table: link every rule to the first rule seen
  // per table (linear in total table references).
  std::map<TableId, RuleIndex> first_user;
  for (RuleIndex r = 0; r < n; ++r) {
    for (TableId t : prelim.rule(r).referenced_tables) {
      auto [it, inserted] = first_user.emplace(t, r);
      if (!inserted) uf.Union(r, it->second);
    }
  }
  // Union ordered pairs.
  for (RuleIndex i = 0; i < n; ++i) {
    for (RuleIndex j = i + 1; j < n; ++j) {
      if (!priority.Unordered(i, j)) uf.Union(i, j);
    }
  }
  std::map<int, std::vector<RuleIndex>> groups;
  for (RuleIndex r = 0; r < n; ++r) groups[uf.Find(r)].push_back(r);
  std::vector<std::vector<RuleIndex>> partitions;
  partitions.reserve(groups.size());
  for (auto& [root, members] : groups) partitions.push_back(std::move(members));
  std::sort(partitions.begin(), partitions.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  return partitions;
}

bool Partitioner::IsValidPartitioning(
    const PrelimAnalysis& prelim, const PriorityOrder& priority,
    const std::vector<std::vector<RuleIndex>>& partitions) {
  int n = prelim.num_rules();
  std::vector<int> group(n, -1);
  for (size_t g = 0; g < partitions.size(); ++g) {
    for (RuleIndex r : partitions[g]) {
      if (r < 0 || r >= n || group[r] != -1) return false;
      group[r] = static_cast<int>(g);
    }
  }
  for (RuleIndex r = 0; r < n; ++r) {
    if (group[r] == -1) return false;
  }
  for (RuleIndex i = 0; i < n; ++i) {
    for (RuleIndex j = i + 1; j < n; ++j) {
      if (group[i] == group[j]) continue;
      if (ShareTable(prelim.rule(i), prelim.rule(j))) return false;
      if (!priority.Unordered(i, j)) return false;
    }
  }
  return true;
}

}  // namespace starburst
