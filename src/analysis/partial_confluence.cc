#include "analysis/partial_confluence.h"

namespace starburst {

std::vector<RuleIndex> PartialConfluenceAnalyzer::SignificantRules(
    const std::vector<TableId>& tables) const {
  const PrelimAnalysis& prelim = commutativity_.prelim();
  int n = prelim.num_rules();
  std::vector<bool> significant(n, false);

  // Seed: rules that modify any table in T'.
  for (RuleIndex r = 0; r < n; ++r) {
    for (const Operation& op : prelim.rule(r).performs) {
      for (TableId t : tables) {
        if (op.table == t) {
          significant[r] = true;
          break;
        }
      }
      if (significant[r]) break;
    }
  }
  // Fixpoint: add rules that do not commute with a significant rule.
  bool changed = true;
  while (changed) {
    changed = false;
    for (RuleIndex r = 0; r < n; ++r) {
      if (significant[r]) continue;
      for (RuleIndex s = 0; s < n; ++s) {
        if (significant[s] && !commutativity_.Commute(r, s)) {
          significant[r] = true;
          changed = true;
          break;
        }
      }
    }
  }
  std::vector<RuleIndex> out;
  for (RuleIndex r = 0; r < n; ++r) {
    if (significant[r]) out.push_back(r);
  }
  return out;
}

PartialConfluenceReport PartialConfluenceAnalyzer::Analyze(
    const std::vector<TableId>& tables,
    const TerminationCertifications& termination_certs,
    int max_violations) const {
  PartialConfluenceReport report;
  report.tables = tables;
  report.significant = SignificantRules(tables);
  // Theorem 7.2 prerequisite: even though Sig(T') is never processed on
  // its own, it must be established that if it were, it would terminate.
  report.termination = TerminationAnalyzer::AnalyzeSubset(
      commutativity_.prelim(), report.significant, termination_certs);
  ConfluenceAnalyzer confluence(commutativity_, priority_);
  report.confluence = confluence.AnalyzeSubset(
      report.significant, report.termination.guaranteed, max_violations);
  report.partially_confluent = report.confluence.confluent;
  return report;
}

}  // namespace starburst
