#include "analysis/analyzer.h"

#include <optional>

#include "analysis/auto_discharge.h"
#include "analysis/refine.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace starburst {

Result<Analyzer> Analyzer::Create(const Schema* schema,
                                  std::vector<RuleDef> rules) {
  STARBURST_ASSIGN_OR_RETURN(RuleCatalog catalog,
                             RuleCatalog::Build(schema, std::move(rules)));
  return Analyzer(std::move(catalog));
}

Analyzer::Analyzer(RuleCatalog catalog) : catalog_(std::move(catalog)) {}

Analyzer::Analyzer(Analyzer&& other) noexcept
    : catalog_(std::move(other.catalog_)),
      termination_certs_(std::move(other.termination_certs_)),
      commutativity_certs_(std::move(other.commutativity_certs_)),
      commutativity_(nullptr) {}

Analyzer& Analyzer::operator=(Analyzer&& other) noexcept {
  catalog_ = std::move(other.catalog_);
  termination_certs_ = std::move(other.termination_certs_);
  commutativity_certs_ = std::move(other.commutativity_certs_);
  commutativity_.reset();
  other.commutativity_.reset();
  return *this;
}

void Analyzer::CertifyQuiescent(const std::string& rule_name) {
  termination_certs_.quiescent_rules.insert(rule_name);
}

void Analyzer::CertifyCommute(const std::string& rule_a,
                              const std::string& rule_b) {
  commutativity_certs_.Certify(rule_a, rule_b);
  commutativity_.reset();  // verdicts changed
}

int Analyzer::ApplyAutoRefinement() {
  PredicateRefiner refiner(catalog_.schema(), catalog_.rules(),
                           catalog_.prelim());
  CommutativityCertifications derived = refiner.Refine();
  int added = 0;
  for (const auto& pair : derived.pairs()) {
    if (!commutativity_certs_.Contains(pair.first, pair.second)) ++added;
  }
  if (added > 0) {
    commutativity_certs_.Merge(derived);
    commutativity_.reset();
  }
  STARBURST_METRIC_COUNT("analysis.refined_pairs", added);
  return added;
}

int Analyzer::ApplyAutoDischarge() {
  AutoDischargeDetector detector(catalog_.schema(), catalog_.rules(),
                                 catalog_.prelim());
  TerminationCertifications derived = detector.Detect();
  int added = 0;
  for (const std::string& name : derived.quiescent_rules) {
    if (termination_certs_.quiescent_rules.insert(name).second) ++added;
  }
  STARBURST_METRIC_COUNT("analysis.discharged_rules", added);
  return added;
}

const CommutativityAnalyzer& Analyzer::commutativity() {
  if (commutativity_ == nullptr) {
    commutativity_ = std::make_unique<CommutativityAnalyzer>(
        catalog_.prelim(), catalog_.schema(), commutativity_certs_);
  }
  return *commutativity_;
}

TerminationReport Analyzer::AnalyzeTermination() {
  STARBURST_TRACE_SPAN("analysis", "termination");
  STARBURST_METRIC_COUNT("analysis.termination_runs", 1);
  return TerminationAnalyzer::Analyze(catalog_.prelim(), termination_certs_);
}

ConfluenceReport Analyzer::AnalyzeConfluence(int max_violations) {
  STARBURST_TRACE_SPAN("analysis", "confluence");
  STARBURST_METRIC_COUNT("analysis.confluence_runs", 1);
  TerminationReport termination = AnalyzeTermination();
  ConfluenceAnalyzer analyzer(commutativity(), catalog_.priority());
  return analyzer.Analyze(termination.guaranteed, max_violations);
}

Result<PartialConfluenceReport> Analyzer::AnalyzePartialConfluence(
    const std::vector<std::string>& table_names, int max_violations) {
  std::vector<TableId> tables;
  tables.reserve(table_names.size());
  for (const std::string& name : table_names) {
    TableId t = catalog_.schema().FindTable(name);
    if (t == kInvalidTableId) {
      return Status::NotFound("no table '" + name + "'");
    }
    tables.push_back(t);
  }
  PartialConfluenceAnalyzer analyzer(commutativity(), catalog_.priority());
  return analyzer.Analyze(tables, termination_certs_, max_violations);
}

ObservableDeterminismReport Analyzer::AnalyzeObservableDeterminism(
    int max_violations) {
  STARBURST_TRACE_SPAN("analysis", "observable_determinism");
  STARBURST_METRIC_COUNT("analysis.observable_runs", 1);
  TerminationReport termination = AnalyzeTermination();
  return ObservableDeterminismAnalyzer::Analyze(
      catalog_.schema(), catalog_.prelim(), catalog_.priority(),
      commutativity_certs_, termination.guaranteed, termination_certs_,
      max_violations);
}

FullReport Analyzer::AnalyzeAll(const AnalyzerOptions& options) {
  std::optional<metrics::ScopedCollect> collect;
  if (options.collect_metrics) collect.emplace();
  return AnalyzeAll(options.max_violations);
}

FullReport Analyzer::AnalyzeAll(int max_violations) {
  STARBURST_TRACE_SPAN("analysis", "analyze_all");
  STARBURST_METRIC_COUNT("analysis.full_reports", 1);
  FullReport report;
  report.termination = AnalyzeTermination();
  ConfluenceAnalyzer confluence(commutativity(), catalog_.priority());
  report.confluence =
      confluence.Analyze(report.termination.guaranteed, max_violations);
  report.observable = ObservableDeterminismAnalyzer::Analyze(
      catalog_.schema(), catalog_.prelim(), catalog_.priority(),
      commutativity_certs_, report.termination.guaranteed, termination_certs_,
      max_violations);
  report.suggestions = SuggestForConfluence(report.confluence);
  report.lints = CorollaryLints(commutativity(), catalog_.priority());
  return report;
}

std::vector<Result<FullReport>> ParallelAnalyzeRuleSets(
    std::vector<RuleSetSpec> specs, int max_violations) {
  STARBURST_TRACE_SPAN("analysis", "parallel_rule_sets");
  STARBURST_METRIC_COUNT("analysis.rule_sets_analyzed",
                         static_cast<int64_t>(specs.size()));
  // Pre-sized so every worker writes only its own slot; the pair sweep
  // inside each AnalyzeAll detects the busy pool and runs inline.
  std::vector<Result<FullReport>> reports(
      specs.size(), Result<FullReport>(Status::Internal("not analyzed")));
  ParallelFor(specs.size(), 1, [&](size_t begin, size_t end) {
    for (size_t k = begin; k < end; ++k) {
      auto analyzer =
          Analyzer::Create(specs[k].schema, std::move(specs[k].rules));
      if (!analyzer.ok()) {
        reports[k] = analyzer.status();
        continue;
      }
      reports[k] = analyzer.value().AnalyzeAll(max_violations);
    }
  });
  return reports;
}

}  // namespace starburst
