#include "analysis/confluence.h"

#include <algorithm>

namespace starburst {

std::pair<std::vector<RuleIndex>, std::vector<RuleIndex>>
ConfluenceAnalyzer::BuildSets(RuleIndex ri, RuleIndex rj) const {
  std::vector<bool> all(commutativity_.prelim().num_rules(), true);
  return BuildSetsWithin(ri, rj, all);
}

std::pair<std::vector<RuleIndex>, std::vector<RuleIndex>>
ConfluenceAnalyzer::BuildSetsWithin(RuleIndex ri, RuleIndex rj,
                                    const std::vector<bool>& members) const {
  const PrelimAnalysis& prelim = commutativity_.prelim();
  int n = prelim.num_rules();
  std::vector<bool> in_r1(n, false), in_r2(n, false);
  in_r1[ri] = true;
  in_r2[rj] = true;

  // Fixpoint of Definition 6.5. Each pass adds rules triggered by the
  // current sets that have precedence over some rule in the other set.
  bool changed = true;
  while (changed) {
    changed = false;
    for (RuleIndex r = 0; r < n; ++r) {
      if (!members[r]) continue;
      if (!in_r1[r] && r != rj) {
        bool triggered_by_r1 = false;
        for (RuleIndex r1 = 0; r1 < n && !triggered_by_r1; ++r1) {
          if (in_r1[r1] && prelim.TriggersRule(r1, r)) triggered_by_r1 = true;
        }
        if (triggered_by_r1) {
          bool above_some_r2 = false;
          for (RuleIndex r2 = 0; r2 < n && !above_some_r2; ++r2) {
            if (in_r2[r2] && priority_.Higher(r, r2)) above_some_r2 = true;
          }
          if (above_some_r2) {
            in_r1[r] = true;
            changed = true;
          }
        }
      }
      if (!in_r2[r] && r != ri) {
        bool triggered_by_r2 = false;
        for (RuleIndex r2 = 0; r2 < n && !triggered_by_r2; ++r2) {
          if (in_r2[r2] && prelim.TriggersRule(r2, r)) triggered_by_r2 = true;
        }
        if (triggered_by_r2) {
          bool above_some_r1 = false;
          for (RuleIndex r1 = 0; r1 < n && !above_some_r1; ++r1) {
            if (in_r1[r1] && priority_.Higher(r, r1)) above_some_r1 = true;
          }
          if (above_some_r1) {
            in_r2[r] = true;
            changed = true;
          }
        }
      }
    }
  }
  std::vector<RuleIndex> r1_set, r2_set;
  for (RuleIndex r = 0; r < n; ++r) {
    if (in_r1[r]) r1_set.push_back(r);
    if (in_r2[r]) r2_set.push_back(r);
  }
  return {std::move(r1_set), std::move(r2_set)};
}

ConfluenceReport ConfluenceAnalyzer::Analyze(bool termination_guaranteed,
                                             int max_violations) const {
  std::vector<RuleIndex> all(commutativity_.prelim().num_rules());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<RuleIndex>(i);
  return AnalyzeImpl(all, termination_guaranteed, max_violations);
}

ConfluenceReport ConfluenceAnalyzer::AnalyzeSubset(
    const std::vector<RuleIndex>& members, bool termination_guaranteed,
    int max_violations) const {
  return AnalyzeImpl(members, termination_guaranteed, max_violations);
}

ConfluenceReport ConfluenceAnalyzer::AnalyzeImpl(
    const std::vector<RuleIndex>& members, bool termination_guaranteed,
    int max_violations) const {
  ConfluenceReport report;
  report.termination_guaranteed = termination_guaranteed;
  report.requirement_holds = true;

  int n = commutativity_.prelim().num_rules();
  std::vector<bool> member_mask(n, false);
  for (RuleIndex r : members) member_mask[r] = true;

  auto violations_full = [&]() {
    return max_violations >= 0 &&
           static_cast<int>(report.violations.size()) >= max_violations;
  };

  for (size_t a = 0; a < members.size(); ++a) {
    for (size_t b = a + 1; b < members.size(); ++b) {
      RuleIndex ri = members[a];
      RuleIndex rj = members[b];
      if (!priority_.Unordered(ri, rj)) continue;
      ++report.unordered_pairs_checked;
      auto [r1_set, r2_set] = BuildSetsWithin(ri, rj, member_mask);
      report.max_set_size =
          std::max({report.max_set_size, r1_set.size(), r2_set.size()});
      for (RuleIndex r1 : r1_set) {
        for (RuleIndex r2 : r2_set) {
          if (commutativity_.Commute(r1, r2)) continue;
          report.requirement_holds = false;
          if (!violations_full()) {
            ConfluenceViolation violation;
            violation.pair_i = ri;
            violation.pair_j = rj;
            violation.r1 = r1;
            violation.r2 = r2;
            violation.set_r1 = r1_set;
            violation.set_r2 = r2_set;
            violation.causes = commutativity_.Explain(r1, r2);
            report.violations.push_back(std::move(violation));
          }
        }
        if (!report.requirement_holds && violations_full()) break;
      }
      if (!report.requirement_holds && violations_full()) {
        report.confluent = false;
        return report;
      }
    }
  }
  report.confluent = report.requirement_holds && termination_guaranteed;
  return report;
}

}  // namespace starburst
