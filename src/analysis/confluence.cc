#include "analysis/confluence.h"

#include <algorithm>
#include <iterator>

namespace starburst {

namespace {

/// Worklist form of the Definition 6.5 fixpoint, shared by the dense and
/// sparse analyzers. Candidates enter a pool when a Triggers edge from the
/// current set reaches them and are admitted once they gain priority over
/// some member of the other set; the loop runs to quiescence, so the
/// result is the least fixpoint — the same sets the quadratic scan
/// produces, in O(reached edges) instead of O(n) per pass.
/// `members` restricts candidates when non-null.
std::pair<std::vector<RuleIndex>, std::vector<RuleIndex>> BuildSetsCore(
    const PrelimAnalysis& prelim, const PriorityOrder& priority, RuleIndex ri,
    RuleIndex rj, const std::vector<bool>* members) {
  int n = prelim.num_rules();
  std::vector<bool> in_r1(n, false), in_r2(n, false);
  std::vector<bool> cand1(n, false), cand2(n, false);
  in_r1[ri] = true;
  in_r2[rj] = true;
  std::vector<RuleIndex> r1_list{ri}, r2_list{rj};
  std::vector<RuleIndex> frontier1{ri}, frontier2{rj};
  std::vector<RuleIndex> pool1, pool2;

  bool changed = true;
  while (changed) {
    changed = false;
    for (RuleIndex v : frontier1) {
      for (RuleIndex w : prelim.Triggers(v)) {
        if (members != nullptr && !(*members)[w]) continue;
        if (in_r1[w] || cand1[w] || w == rj) continue;
        cand1[w] = true;
        pool1.push_back(w);
      }
    }
    frontier1.clear();
    for (RuleIndex v : frontier2) {
      for (RuleIndex w : prelim.Triggers(v)) {
        if (members != nullptr && !(*members)[w]) continue;
        if (in_r2[w] || cand2[w] || w == ri) continue;
        cand2[w] = true;
        pool2.push_back(w);
      }
    }
    frontier2.clear();
    // Admit candidates that (now) have precedence over some rule of the
    // other set; rejected candidates stay pooled — the other set may still
    // grow under them.
    size_t kept = 0;
    for (RuleIndex w : pool1) {
      bool above = false;
      for (RuleIndex r2 : r2_list) {
        if (priority.Higher(w, r2)) {
          above = true;
          break;
        }
      }
      if (above) {
        in_r1[w] = true;
        r1_list.push_back(w);
        frontier1.push_back(w);
        changed = true;
      } else {
        pool1[kept++] = w;
      }
    }
    pool1.resize(kept);
    kept = 0;
    for (RuleIndex w : pool2) {
      bool above = false;
      for (RuleIndex r1 : r1_list) {
        if (priority.Higher(w, r1)) {
          above = true;
          break;
        }
      }
      if (above) {
        in_r2[w] = true;
        r2_list.push_back(w);
        frontier2.push_back(w);
        changed = true;
      } else {
        pool2[kept++] = w;
      }
    }
    pool2.resize(kept);
  }
  std::sort(r1_list.begin(), r1_list.end());
  std::sort(r2_list.begin(), r2_list.end());
  return {std::move(r1_list), std::move(r2_list)};
}

}  // namespace

std::pair<std::vector<RuleIndex>, std::vector<RuleIndex>>
ConfluenceAnalyzer::BuildSets(RuleIndex ri, RuleIndex rj) const {
  return BuildSetsCore(commutativity_.prelim(), priority_, ri, rj, nullptr);
}

std::pair<std::vector<RuleIndex>, std::vector<RuleIndex>>
ConfluenceAnalyzer::BuildSetsWithin(RuleIndex ri, RuleIndex rj,
                                    const std::vector<bool>& members) const {
  return BuildSetsCore(commutativity_.prelim(), priority_, ri, rj, &members);
}

ConfluenceReport ConfluenceAnalyzer::Analyze(bool termination_guaranteed,
                                             int max_violations) const {
  std::vector<RuleIndex> all(commutativity_.prelim().num_rules());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<RuleIndex>(i);
  return AnalyzeImpl(all, termination_guaranteed, max_violations);
}

ConfluenceReport ConfluenceAnalyzer::AnalyzeSubset(
    const std::vector<RuleIndex>& members, bool termination_guaranteed,
    int max_violations) const {
  return AnalyzeImpl(members, termination_guaranteed, max_violations);
}

ConfluenceReport ConfluenceAnalyzer::AnalyzeImpl(
    const std::vector<RuleIndex>& members, bool termination_guaranteed,
    int max_violations) const {
  ConfluenceReport report;
  report.termination_guaranteed = termination_guaranteed;
  report.requirement_holds = true;

  int n = commutativity_.prelim().num_rules();
  std::vector<bool> member_mask(n, false);
  for (RuleIndex r : members) member_mask[r] = true;

  auto violations_full = [&]() {
    return max_violations >= 0 &&
           static_cast<int>(report.violations.size()) >= max_violations;
  };

  for (size_t a = 0; a < members.size(); ++a) {
    for (size_t b = a + 1; b < members.size(); ++b) {
      RuleIndex ri = members[a];
      RuleIndex rj = members[b];
      if (!priority_.Unordered(ri, rj)) continue;
      ++report.unordered_pairs_checked;
      auto [r1_set, r2_set] = BuildSetsWithin(ri, rj, member_mask);
      report.max_set_size =
          std::max({report.max_set_size, r1_set.size(), r2_set.size()});
      for (RuleIndex r1 : r1_set) {
        for (RuleIndex r2 : r2_set) {
          if (commutativity_.Commute(r1, r2)) continue;
          report.requirement_holds = false;
          if (!violations_full()) {
            ConfluenceViolation violation;
            violation.pair_i = ri;
            violation.pair_j = rj;
            violation.r1 = r1;
            violation.r2 = r2;
            violation.set_r1 = r1_set;
            violation.set_r2 = r2_set;
            violation.causes = commutativity_.Explain(r1, r2);
            report.violations.push_back(std::move(violation));
          }
        }
        if (!report.requirement_holds && violations_full()) break;
      }
      if (!report.requirement_holds && violations_full()) {
        report.confluent = false;
        return report;
      }
    }
  }
  report.confluent = report.requirement_holds && termination_guaranteed;
  return report;
}

SparseConfluenceAnalyzer::SparseConfluenceAnalyzer(
    const PrelimAnalysis& prelim, const PriorityOrder& priority,
    const std::vector<std::vector<RuleIndex>>& noncommute,
    const CommutativityCertifications& certifications)
    : prelim_(prelim), priority_(priority), noncommute_(noncommute) {
  for (const auto& [a, b] : certifications.pairs()) {
    RuleIndex i = prelim_.FindRule(a);
    RuleIndex j = prelim_.FindRule(b);
    if (i < 0 || j < 0 || i == j) continue;
    certified_.emplace(std::min(i, j), std::max(i, j));
  }
}

bool SparseConfluenceAnalyzer::Commute(RuleIndex i, RuleIndex j) const {
  if (i == j) return true;
  const std::vector<RuleIndex>& row = noncommute_[i];
  if (!std::binary_search(row.begin(), row.end(), j)) return true;
  return certified_.count(i < j ? std::make_pair(i, j)
                                : std::make_pair(j, i)) > 0;
}

ConfluenceReport SparseConfluenceAnalyzer::Analyze(bool termination_guaranteed,
                                                   int max_violations) const {
  ConfluenceReport report;
  report.termination_guaranteed = termination_guaranteed;
  report.requirement_holds = true;
  int n = prelim_.num_rules();

  // can-seed(x): some rule triggered by x has a rule below it in P — the
  // only way the pair's first Definition 6.5 growth step can fire.
  std::vector<bool> can_seed(n, false);
  std::vector<RuleIndex> seeds;  // ascending
  for (RuleIndex x = 0; x < n; ++x) {
    for (RuleIndex w : prelim_.Triggers(x)) {
      if (priority_.HasLowerRule(w)) {
        can_seed[x] = true;
        seeds.push_back(x);
        break;
      }
    }
  }

  auto violations_full = [&]() {
    return max_violations >= 0 &&
           static_cast<int>(report.violations.size()) >= max_violations;
  };

  bool truncated = false;
  RuleIndex stop_a = -1, stop_b = -1;
  std::vector<RuleIndex> partners;
  for (RuleIndex a = 0; a < n && !truncated; ++a) {
    partners.clear();
    if (can_seed[a]) {
      for (RuleIndex b = a + 1; b < n; ++b) partners.push_back(b);
    } else {
      // Only growable pairs (partner can seed) and noncommuting singleton
      // pairs can produce violations; merge both sorted lists above `a`.
      const std::vector<RuleIndex>& row = noncommute_[a];
      std::set_union(std::upper_bound(row.begin(), row.end(), a), row.end(),
                     std::upper_bound(seeds.begin(), seeds.end(), a),
                     seeds.end(), std::back_inserter(partners));
    }
    for (RuleIndex b : partners) {
      if (!priority_.Unordered(a, b)) continue;
      if (can_seed[a] || can_seed[b]) {
        auto [r1_set, r2_set] = BuildSetsCore(prelim_, priority_, a, b,
                                              nullptr);
        report.max_set_size =
            std::max({report.max_set_size, r1_set.size(), r2_set.size()});
        for (RuleIndex r1 : r1_set) {
          for (RuleIndex r2 : r2_set) {
            if (Commute(r1, r2)) continue;
            report.requirement_holds = false;
            if (!violations_full()) {
              ConfluenceViolation violation;
              violation.pair_i = a;
              violation.pair_j = b;
              violation.r1 = r1;
              violation.r2 = r2;
              violation.set_r1 = r1_set;
              violation.set_r2 = r2_set;
              violation.causes =
                  CommutativityAnalyzer::ExplainPair(prelim_, r1, r2);
              report.violations.push_back(std::move(violation));
            }
          }
          if (!report.requirement_holds && violations_full()) break;
        }
      } else if (!Commute(a, b)) {
        // Singleton sets {a}, {b}: the pair itself is the only witness.
        report.requirement_holds = false;
        if (!violations_full()) {
          ConfluenceViolation violation;
          violation.pair_i = a;
          violation.pair_j = b;
          violation.r1 = a;
          violation.r2 = b;
          violation.set_r1 = {a};
          violation.set_r2 = {b};
          violation.causes = CommutativityAnalyzer::ExplainPair(prelim_, a, b);
          report.violations.push_back(std::move(violation));
        }
      }
      if (!report.requirement_holds && violations_full()) {
        stop_a = a;
        stop_b = b;
        truncated = true;
        break;
      }
    }
  }

  if (truncated) {
    // Unordered pairs up to and including the stopping pair in (a, b)
    // lexicographic order — skipped pairs never mutate the report, so the
    // stopping pair matches the dense scan and the count is reconstructed
    // in closed form from the priority order.
    long count = 0;
    for (RuleIndex x = 0; x < stop_a; ++x) {
      count += (n - 1 - x) - priority_.NumOrderedPartnersAbove(x);
    }
    for (RuleIndex y = stop_a + 1; y <= stop_b; ++y) {
      if (priority_.Unordered(stop_a, y)) ++count;
    }
    report.unordered_pairs_checked = static_cast<int>(count);
    report.max_set_size = std::max<size_t>(report.max_set_size, 1);
    report.confluent = false;
    return report;
  }
  long total =
      static_cast<long>(n) * (n - 1) / 2 - priority_.num_ordered_pairs();
  report.unordered_pairs_checked = static_cast<int>(total);
  if (total > 0) report.max_set_size = std::max<size_t>(report.max_set_size, 1);
  report.confluent = report.requirement_holds && termination_guaranteed;
  return report;
}

}  // namespace starburst
