#include "analysis/ops.h"

namespace starburst {

namespace {

std::string TableName(const Schema& schema, TableId t) {
  if (t >= 0 && t < schema.num_tables()) return schema.table(t).name();
  return "<table " + std::to_string(t) + ">";
}

std::string ColumnName(const Schema& schema, TableId t, ColumnId c) {
  if (t >= 0 && t < schema.num_tables() && c >= 0 &&
      c < schema.table(t).num_columns()) {
    return schema.table(t).column(c).name;
  }
  return "<col " + std::to_string(c) + ">";
}

}  // namespace

std::string Operation::ToString(const Schema& schema) const {
  switch (kind) {
    case Kind::kInsert:
      return "(I, " + TableName(schema, table) + ")";
    case Kind::kDelete:
      return "(D, " + TableName(schema, table) + ")";
    case Kind::kUpdate:
      return "(U, " + TableName(schema, table) + "." +
             ColumnName(schema, table, column) + ")";
  }
  return "(?)";
}

std::string TableColumn::ToString(const Schema& schema) const {
  return TableName(schema, table) + "." + ColumnName(schema, table, column);
}

bool Intersects(const OperationSet& a, const OperationSet& b) {
  // Walk the smaller set, probe the larger.
  const OperationSet& small = a.size() <= b.size() ? a : b;
  const OperationSet& large = a.size() <= b.size() ? b : a;
  for (const Operation& op : small) {
    if (large.count(op) > 0) return true;
  }
  return false;
}

bool WritesAnyOf(const OperationSet& ops, const TableColumnSet& reads) {
  for (const Operation& op : ops) {
    switch (op.kind) {
      case Operation::Kind::kInsert:
      case Operation::Kind::kDelete: {
        // Touches every column of op.table: check any read on that table.
        auto it = reads.lower_bound(TableColumn{op.table, 0});
        if (it != reads.end() && it->table == op.table) return true;
        break;
      }
      case Operation::Kind::kUpdate:
        if (reads.count(TableColumn{op.table, op.column}) > 0) return true;
        break;
    }
  }
  return false;
}

std::string OperationSetToString(const OperationSet& ops,
                                 const Schema& schema) {
  std::string out = "{";
  bool first = true;
  for (const Operation& op : ops) {
    if (!first) out += ", ";
    first = false;
    out += op.ToString(schema);
  }
  out += "}";
  return out;
}

}  // namespace starburst
