#ifndef STARBURST_ANALYSIS_SUGGEST_H_
#define STARBURST_ANALYSIS_SUGGEST_H_

#include <string>
#include <vector>

#include "analysis/confluence.h"

namespace starburst {

/// One suggested user action towards confluence (Section 6.4). Approach 3
/// of the paper (removing orderings) is intentionally never suggested —
/// the paper shows it is useless.
struct Suggestion {
  enum class Kind {
    /// Approach 1: certify that `rule_a` and `rule_b` actually commute.
    kCertifyCommute,
    /// Approach 2: add a priority ordering between `rule_a` and `rule_b`
    /// (either direction removes the pair from the Confluence
    /// Requirement's unordered-pair obligation).
    kAddPriority,
  };
  Kind kind = Kind::kCertifyCommute;
  RuleIndex rule_a = -1;
  RuleIndex rule_b = -1;

  std::string Describe(const PrelimAnalysis& prelim) const;
};

/// Derives suggestions from confluence violations: for each violation,
/// certifying the witness pair (when the user can argue they commute) or
/// ordering the generating unordered pair. Duplicates are removed.
std::vector<Suggestion> SuggestForConfluence(const ConfluenceReport& report);

/// Fast structural lints from the Section 6.4 corollaries, usable before
/// running the full (quadratic-with-fixpoints) confluence analysis:
///  * Corollary 6.10 — if ri may trigger rj and the two are unordered, the
///    rule set cannot be found confluent; each such pair yields a warning.
///  * Corollary 6.9 — with no priorities at all, every noncommuting pair
///    is immediately fatal to confluence (reported like 6.10).
/// Returns human-readable warnings (empty = no obvious obstruction).
std::vector<std::string> CorollaryLints(
    const CommutativityAnalyzer& commutativity, const PriorityOrder& priority);

/// The outcome of the iterative ordering process of footnote 6: orderings
/// are added one at a time (each re-analysis can surface new violations —
/// "a source of non-confluence can appear to move around") until the rule
/// set passes the Confluence Requirement or no progress can be made.
struct RepairResult {
  /// Priority edges (higher, lower) that were added.
  std::vector<std::pair<RuleIndex, RuleIndex>> added_orderings;
  /// The final report after all additions.
  ConfluenceReport final_report;
  /// Rounds of re-analysis performed.
  int iterations = 0;
  /// True when the requirement holds at the end.
  bool succeeded = false;
};

/// Iteratively adds priority orderings between violating unordered pairs
/// until the Confluence Requirement holds. Each round orders the first
/// violation's generating pair (lower rule index gets precedence, a
/// deterministic but arbitrary choice the user would make interactively).
/// Gives up after `max_iterations` rounds or when adding an edge would
/// make the priority relation cyclic.
RepairResult RepairByOrdering(const CommutativityAnalyzer& commutativity,
                              const PriorityOrder& initial_priority,
                              bool termination_guaranteed,
                              int max_iterations = 1000);

}  // namespace starburst

#endif  // STARBURST_ANALYSIS_SUGGEST_H_
