#include "analysis/termination.h"

#include "common/strings.h"

namespace starburst {

namespace {

TerminationReport AnalyzeGraph(const PrelimAnalysis& prelim,
                               const TriggeringGraph& graph,
                               const TerminationCertifications& certs) {
  TerminationReport report;
  auto cyclic = graph.CyclicComponents();
  report.acyclic = cyclic.empty();
  report.guaranteed = true;
  for (auto& component : cyclic) {
    CycleReport cycle;
    cycle.rules = component;
    for (RuleIndex r : component) {
      for (const std::string& name : certs.quiescent_rules) {
        if (EqualsIgnoreCase(prelim.rule(r).name, name)) {
          cycle.certified.push_back(r);
          break;
        }
      }
    }
    cycle.discharged = !cycle.certified.empty() &&
                       graph.AcyclicWithout(cycle.rules, cycle.certified);
    if (!cycle.discharged) report.guaranteed = false;
    report.cycles.push_back(std::move(cycle));
  }
  return report;
}

}  // namespace

TerminationReport TerminationAnalyzer::Analyze(
    const PrelimAnalysis& prelim, const TerminationCertifications& certs) {
  TriggeringGraph graph(prelim);
  return AnalyzeGraph(prelim, graph, certs);
}

TerminationReport TerminationAnalyzer::AnalyzeSubset(
    const PrelimAnalysis& prelim, const std::vector<RuleIndex>& members,
    const TerminationCertifications& certs) {
  TriggeringGraph graph(prelim, members);
  return AnalyzeGraph(prelim, graph, certs);
}

}  // namespace starburst
