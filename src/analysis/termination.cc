#include "analysis/termination.h"

#include "common/strings.h"

namespace starburst {

namespace {

/// Cache key for a cyclic component: the member rules' name@version pairs
/// (ascending index order) plus the component's certified names. Any
/// rule-set edit bumps versions (or changes membership), so a key match
/// means the component's AcyclicWithout verdict is still valid.
std::string ComponentKey(const PrelimAnalysis& prelim,
                         const TerminationComponentCache& cache,
                         const CycleReport& cycle) {
  std::string key;
  for (RuleIndex r : cycle.rules) {
    std::string lower = ToLower(prelim.rule(r).name);
    auto it = cache.rule_versions.find(lower);
    uint64_t version = it == cache.rule_versions.end() ? 0 : it->second;
    key += lower;
    key += '@';
    key += std::to_string(version);
    key += ';';
  }
  key += '#';
  for (RuleIndex r : cycle.certified) {
    key += ToLower(prelim.rule(r).name);
    key += ';';
  }
  return key;
}

TerminationReport AnalyzeGraph(const PrelimAnalysis& prelim,
                               const TriggeringGraph& graph,
                               const TerminationCertifications& certs,
                               TerminationComponentCache* cache = nullptr) {
  TerminationReport report;
  auto cyclic = graph.CyclicComponents();
  report.acyclic = cyclic.empty();
  report.guaranteed = true;
  for (auto& component : cyclic) {
    CycleReport cycle;
    cycle.rules = component;
    for (RuleIndex r : component) {
      for (const std::string& name : certs.quiescent_rules) {
        if (EqualsIgnoreCase(prelim.rule(r).name, name)) {
          cycle.certified.push_back(r);
          break;
        }
      }
    }
    if (cycle.certified.empty()) {
      cycle.discharged = false;
    } else if (cache != nullptr) {
      std::string key = ComponentKey(prelim, *cache, cycle);
      auto it = cache->discharged.find(key);
      if (it != cache->discharged.end()) {
        ++cache->hits;
        cycle.discharged = it->second;
      } else {
        ++cache->misses;
        cycle.discharged = graph.AcyclicWithout(cycle.rules, cycle.certified);
        cache->discharged.emplace(std::move(key), cycle.discharged);
      }
    } else {
      cycle.discharged = graph.AcyclicWithout(cycle.rules, cycle.certified);
    }
    if (!cycle.discharged) report.guaranteed = false;
    report.cycles.push_back(std::move(cycle));
  }
  return report;
}

}  // namespace

TerminationReport TerminationAnalyzer::Analyze(
    const PrelimAnalysis& prelim, const TerminationCertifications& certs,
    TerminationComponentCache* cache) {
  TriggeringGraph graph(prelim);
  return AnalyzeGraph(prelim, graph, certs, cache);
}

TerminationReport TerminationAnalyzer::AnalyzeSubset(
    const PrelimAnalysis& prelim, const std::vector<RuleIndex>& members,
    const TerminationCertifications& certs) {
  TriggeringGraph graph(prelim, members);
  return AnalyzeGraph(prelim, graph, certs);
}

}  // namespace starburst
