#include "analysis/json_report.h"

#include <cstdio>

namespace starburst {

namespace {

std::string RuleName(const RuleCatalog& catalog, RuleIndex r) {
  if (r < 0 || r >= catalog.num_rules()) return "<unknown>";
  return catalog.prelim().rule(r).name;
}

std::string Quoted(const std::string& s) {
  return "\"" + JsonEscape(s) + "\"";
}

std::string RuleArray(const RuleCatalog& catalog,
                      const std::vector<RuleIndex>& rules) {
  std::string out = "[";
  for (size_t i = 0; i < rules.size(); ++i) {
    if (i > 0) out += ",";
    out += Quoted(RuleName(catalog, rules[i]));
  }
  out += "]";
  return out;
}

const char* Bool(bool b) { return b ? "true" : "false"; }

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string TerminationReportToJson(const TerminationReport& report,
                                    const RuleCatalog& catalog) {
  std::string out = "{";
  out += "\"guaranteed\":" + std::string(Bool(report.guaranteed));
  out += ",\"acyclic\":" + std::string(Bool(report.acyclic));
  out += ",\"cycles\":[";
  for (size_t i = 0; i < report.cycles.size(); ++i) {
    if (i > 0) out += ",";
    const CycleReport& cycle = report.cycles[i];
    out += "{\"rules\":" + RuleArray(catalog, cycle.rules);
    out += ",\"certified\":" + RuleArray(catalog, cycle.certified);
    out += ",\"discharged\":" + std::string(Bool(cycle.discharged)) + "}";
  }
  out += "]}";
  return out;
}

std::string ConfluenceReportToJson(const ConfluenceReport& report,
                                   const RuleCatalog& catalog) {
  std::string out = "{";
  out += "\"confluent\":" + std::string(Bool(report.confluent));
  out +=
      ",\"requirement_holds\":" + std::string(Bool(report.requirement_holds));
  out += ",\"termination_guaranteed\":" +
         std::string(Bool(report.termination_guaranteed));
  out += ",\"unordered_pairs_checked\":" +
         std::to_string(report.unordered_pairs_checked);
  out += ",\"violations\":[";
  for (size_t i = 0; i < report.violations.size(); ++i) {
    if (i > 0) out += ",";
    const ConfluenceViolation& v = report.violations[i];
    out += "{\"pair\":" + RuleArray(catalog, {v.pair_i, v.pair_j});
    out += ",\"witnesses\":" + RuleArray(catalog, {v.r1, v.r2});
    out += ",\"r1_set\":" + RuleArray(catalog, v.set_r1);
    out += ",\"r2_set\":" + RuleArray(catalog, v.set_r2);
    out += ",\"causes\":[";
    for (size_t c = 0; c < v.causes.size(); ++c) {
      if (c > 0) out += ",";
      const NoncommutativityCause& cause = v.causes[c];
      out += "{\"condition\":" + std::to_string(cause.condition);
      out += ",\"actor\":" + Quoted(RuleName(catalog, cause.actor));
      out += ",\"affected\":" + Quoted(RuleName(catalog, cause.affected));
      out += "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string ObservableReportToJson(const ObservableDeterminismReport& report,
                                   const RuleCatalog& catalog) {
  std::string out = "{";
  out += "\"deterministic\":" + std::string(Bool(report.deterministic));
  out += ",\"whole_set_termination\":" +
         std::string(Bool(report.whole_set_termination));
  out += ",\"observable_rules\":" +
         RuleArray(catalog, report.observable_rules);
  out += ",\"sig_obs\":" +
         RuleArray(catalog, report.obs_confluence.significant);
  out += ",\"unordered_observable_pairs\":[";
  for (size_t i = 0; i < report.unordered_observable_pairs.size(); ++i) {
    if (i > 0) out += ",";
    const auto& [a, b] = report.unordered_observable_pairs[i];
    out += RuleArray(catalog, {a, b});
  }
  out += "]}";
  return out;
}

std::string ExplorationStatsToJson(const ExplorationStats& stats) {
  char wall[32];
  std::snprintf(wall, sizeof(wall), "%.6f", stats.wall_seconds);
  std::string out = "{";
  out += "\"states_interned\":" + std::to_string(stats.states_interned);
  out += ",\"dedup_hits\":" + std::to_string(stats.dedup_hits);
  out += ",\"interner_hits\":" + std::to_string(stats.interner_hits);
  out += ",\"peak_stack_depth\":" + std::to_string(stats.peak_stack_depth);
  out += ",\"canonicalization_bytes\":" +
         std::to_string(stats.canonicalization_bytes);
  out += ",\"delta_reverts\":" + std::to_string(stats.delta_reverts);
  out += ",\"por_pruned_orders\":" + std::to_string(stats.por_pruned_orders);
  out += ",\"steals\":" + std::to_string(stats.steals);
  out += ",\"shared_interner_hits\":" +
         std::to_string(stats.shared_interner_hits);
  out += ",\"parallel_fallbacks\":" + std::to_string(stats.parallel_fallbacks);
  out += ",\"wall_seconds\":";
  out += wall;
  out += "}";
  return out;
}

std::string WitnessExtractionToJson(const WitnessExtraction& extraction,
                                    const RuleCatalog& catalog) {
  std::string out = "{";
  switch (extraction.status) {
    case WitnessStatus::kFound:
      out += "\"status\":\"found\"";
      break;
    case WitnessStatus::kNone:
      out += "\"status\":\"none\"";
      break;
    case WitnessStatus::kNotEvaluated:
      out += "\"status\":\"not_evaluated\"";
      break;
  }
  if (!extraction.note.empty()) out += ",\"note\":" + Quoted(extraction.note);
  if (extraction.status != WitnessStatus::kFound) {
    out += "}";
    return out;
  }
  const DivergenceWitness& w = extraction.witness;
  out += ",\"witness\":{";
  out += "\"kind\":";
  out += w.kind == DivergenceWitness::Kind::kFinalState
             ? "\"final_state\""
             : "\"observable_stream\"";
  out += ",\"sequence_a\":" + RuleArray(catalog, w.sequence_a);
  out += ",\"sequence_b\":" + RuleArray(catalog, w.sequence_b);
  out += ",\"prefix_len\":" + std::to_string(w.prefix_len);
  out += ",\"diverge\":" + RuleArray(catalog, {w.diverge_a, w.diverge_b});
  out += ",\"pair\":" + RuleArray(catalog, {w.pair_i, w.pair_j});
  out += ",\"pair_explained\":" + std::string(Bool(w.pair_explained));
  out += ",\"causes\":[";
  for (size_t c = 0; c < w.causes.size(); ++c) {
    if (c > 0) out += ",";
    const NoncommutativityCause& cause = w.causes[c];
    out += "{\"condition\":" + std::to_string(cause.condition);
    out += ",\"actor\":" + Quoted(RuleName(catalog, cause.actor));
    out += ",\"affected\":" + Quoted(RuleName(catalog, cause.affected));
    out += "}";
  }
  out += "],\"overlap_tables\":[";
  for (size_t t = 0; t < w.overlap_tables.size(); ++t) {
    if (t > 0) out += ",";
    out += Quoted(catalog.schema().table(w.overlap_tables[t]).name());
  }
  out += "]";
  out += ",\"final_a\":" + Quoted(w.final_a);
  out += ",\"final_b\":" + Quoted(w.final_b);
  out += ",\"stream_a\":" + Quoted(w.stream_a);
  out += ",\"stream_b\":" + Quoted(w.stream_b);
  out += ",\"rollback_a\":" + std::string(Bool(w.rollback_a));
  out += ",\"rollback_b\":" + std::string(Bool(w.rollback_b));
  out += "}}";
  return out;
}

std::string FullReportToJson(const FullReport& report,
                             const RuleCatalog& catalog,
                             const WitnessExtraction* witness) {
  std::string out = "{";
  out += "\"termination\":" +
         TerminationReportToJson(report.termination, catalog);
  out += ",\"confluence\":" +
         ConfluenceReportToJson(report.confluence, catalog);
  out += ",\"observable\":" +
         ObservableReportToJson(report.observable, catalog);
  out += ",\"suggestions\":[";
  for (size_t i = 0; i < report.suggestions.size(); ++i) {
    if (i > 0) out += ",";
    const Suggestion& s = report.suggestions[i];
    out += "{\"kind\":";
    out += s.kind == Suggestion::Kind::kCertifyCommute
               ? "\"certify_commute\""
               : "\"add_priority\"";
    out += ",\"rules\":" + RuleArray(catalog, {s.rule_a, s.rule_b});
    out += "}";
  }
  out += "]";
  if (witness != nullptr) {
    out += ",\"witness\":" + WitnessExtractionToJson(*witness, catalog);
  }
  out += "}";
  return out;
}

std::string FullReportToJson(const FullReport& report,
                             const RuleCatalog& catalog) {
  return FullReportToJson(report, catalog, nullptr);
}

}  // namespace starburst
