#ifndef STARBURST_ANALYSIS_OBSERVABLE_H_
#define STARBURST_ANALYSIS_OBSERVABLE_H_

#include <memory>
#include <utility>
#include <vector>

#include "analysis/partial_confluence.h"

namespace starburst {

/// Result of observable-determinism analysis (Theorem 8.1).
struct ObservableDeterminismReport {
  /// Rules whose action may be observable.
  std::vector<RuleIndex> observable_rules;
  /// Partial-confluence analysis w.r.t. the fictional Obs table, using the
  /// extended Reads_obs / Performs_obs definitions.
  PartialConfluenceReport obs_confluence;
  /// Termination of the whole rule set R, as supplied by the caller
  /// (Theorem 8.1 requires no infinite paths in any execution graph for R).
  bool whole_set_termination = false;
  /// Theorem 8.1 verdict: the order and appearance of observable actions
  /// is independent of the choice among unordered rules.
  bool deterministic = false;
  /// Corollary 8.2 lint: pairs of distinct observable rules that are
  /// unordered. Non-empty implies non-determinism.
  std::vector<std::pair<RuleIndex, RuleIndex>> unordered_observable_pairs;
};

/// Observable-determinism analysis (Section 8): adds the fictional Obs
/// table — every observable rule also "inserts a timestamped log entry
/// into Obs and reads Obs" — and checks partial confluence with respect to
/// {Obs}.
///
/// Note on certifications: a user commutativity certification between two
/// observable rules also certifies that their *observable* actions
/// commute; Corollary 8.2 holds only for rule sets found deterministic
/// without such certifications.
class ObservableDeterminismAnalyzer {
 public:
  /// `whole_set_termination` is the Section 5 verdict for all of R.
  static ObservableDeterminismReport Analyze(
      const Schema& schema, const PrelimAnalysis& prelim,
      const PriorityOrder& priority,
      const CommutativityCertifications& certifications,
      bool whole_set_termination,
      const TerminationCertifications& termination_certs = {},
      int max_violations = -1);
};

}  // namespace starburst

#endif  // STARBURST_ANALYSIS_OBSERVABLE_H_
