#include "analysis/witness.h"

#include <algorithm>
#include <optional>
#include <set>
#include <utility>

#include "analysis/rule_index.h"
#include "common/metrics.h"
#include "engine/exec.h"
#include "rulelang/parser.h"

namespace starburst {

namespace {

/// Canonical key of an execution state for on-path cycle detection during
/// witness reconstruction: database canonical string + '#' + each pending
/// transition's canonical string + '|'. Matches the explorer's state
/// equivalence exactly (explorer.cc's CanonicalStateKey), so reconstruction
/// cuts cycles at the same states the explorer does.
std::string ReconstructionStateKey(const RuleProcessingState& state) {
  std::string key;
  state.db.AppendCanonicalString(&key);
  key += '#';
  for (const Transition& t : state.pending) {
    t.AppendCanonicalString(&key);
    key += '|';
  }
  return key;
}

/// One terminating path found during reconstruction.
struct FoundPath {
  std::vector<RuleIndex> sequence;
  std::string final_state;  // canonical database string
  std::string stream;       // ObservableStreamToString rendering
  bool rollback = false;
};

/// Deterministic bounded DFS over the execution graph, looking for the
/// first path (in ascending-rule-index expansion order, i.e. the
/// lexicographically smallest firing sequence) to each of two target
/// outcomes. Snapshot-copy states keep the walk simple; the budgets bound
/// the cost like the explorer's.
class Reconstructor {
 public:
  Reconstructor(const RuleCatalog& catalog, const Database& initial_db,
                const Transition& initial_transition,
                const WitnessOptions& options, DivergenceWitness::Kind kind,
                const std::string& target_a, const std::string& target_b)
      : catalog_(catalog),
        initial_db_(initial_db),
        initial_transition_(initial_transition),
        options_(options),
        kind_(kind),
        target_a_(target_a),
        target_b_(target_b),
        initial_canonical_(initial_db.CanonicalString()) {}

  /// Runs the DFS. On success path_a() / path_b() hold the two paths;
  /// exhausted() reports whether a budget bound was hit before both were
  /// found (targets may then legitimately be missing).
  Status Run() {
    RuleProcessingState state(&catalog_.schema(), catalog_.num_rules());
    state.db = initial_db_;
    for (Transition& t : state.pending) t = initial_transition_;
    std::vector<RuleIndex> sequence;
    std::vector<ObservableEvent> stream;
    return Visit(state, &sequence, &stream, /*depth=*/0);
  }

  bool both_found() const {
    return path_a_.has_value() && path_b_.has_value();
  }
  bool exhausted() const { return exhausted_; }
  const FoundPath& path_a() const { return *path_a_; }
  const FoundPath& path_b() const { return *path_b_; }

 private:
  /// Records a terminating path against the targets. The DFS expands rules
  /// in ascending index order, so the first hit per target is the
  /// lexicographically smallest sequence reaching it.
  void NoteTerminal(const std::vector<RuleIndex>& sequence,
                    const std::string& final_state,
                    std::vector<ObservableEvent>* stream, bool rollback) {
    const std::string rendered = ObservableStreamToString(*stream);
    const std::string& outcome =
        kind_ == DivergenceWitness::Kind::kFinalState ? final_state : rendered;
    if (!path_a_.has_value() && outcome == target_a_) {
      path_a_ = FoundPath{sequence, final_state, rendered, rollback};
    } else if (!path_b_.has_value() && outcome == target_b_) {
      path_b_ = FoundPath{sequence, final_state, rendered, rollback};
    }
  }

  Status Visit(const RuleProcessingState& state,
               std::vector<RuleIndex>* sequence,
               std::vector<ObservableEvent>* stream, int depth) {
    if (both_found()) return Status::OK();
    std::vector<RuleIndex> triggered = TriggeredRules(catalog_, state);
    if (triggered.empty()) {
      NoteTerminal(*sequence, state.db.CanonicalString(), stream, false);
      return Status::OK();
    }
    if (depth >= options_.max_depth) {
      exhausted_ = true;
      return Status::OK();
    }
    std::string key = ReconstructionStateKey(state);
    if (!on_path_.insert(key).second) return Status::OK();  // cycle: cut
    std::vector<RuleIndex> eligible = EligibleRules(catalog_, triggered);
    Status status = Status::OK();
    for (RuleIndex r : eligible) {
      if (both_found()) break;
      if (++steps_ > options_.max_total_steps) {
        exhausted_ = true;
        break;
      }
      RuleProcessingState next = state;
      Result<StepOutcome> outcome = ConsiderRule(catalog_, &next, r);
      if (!outcome.ok()) {
        status = outcome.status();
        break;
      }
      sequence->push_back(r);
      size_t stream_mark = stream->size();
      stream->insert(stream->end(), outcome.value().observables.begin(),
                     outcome.value().observables.end());
      if (outcome.value().rollback) {
        // ROLLBACK terminates the path at the initial database; the
        // rollback event is already in the stream.
        NoteTerminal(*sequence, initial_canonical_, stream, true);
      } else {
        status = Visit(next, sequence, stream, depth + 1);
      }
      stream->resize(stream_mark);
      sequence->pop_back();
      if (!status.ok()) break;
    }
    on_path_.erase(key);
    return status;
  }

  const RuleCatalog& catalog_;
  const Database& initial_db_;
  const Transition& initial_transition_;
  const WitnessOptions& options_;
  const DivergenceWitness::Kind kind_;
  const std::string target_a_;
  const std::string target_b_;
  const std::string initial_canonical_;

  std::set<std::string> on_path_;
  long steps_ = 0;
  bool exhausted_ = false;
  std::optional<FoundPath> path_a_;
  std::optional<FoundPath> path_b_;
};

WitnessExtraction NotEvaluated(std::string note) {
  WitnessExtraction extraction;
  extraction.status = WitnessStatus::kNotEvaluated;
  extraction.note = std::move(note);
  return extraction;
}

/// The result of replaying one witness sequence.
struct ReplayedLane {
  bool ok = false;
  std::string message;
  std::string final_state;
  std::string stream;
  bool rollback = false;
};

ReplayedLane LaneMismatch(std::string message) {
  ReplayedLane lane;
  lane.message = std::move(message);
  return lane;
}

/// Re-executes one forced firing sequence through the rule-processing step
/// semantics (the same TriggeredRules / EligibleRules / ConsiderRule the
/// processor and explorer use).
Result<ReplayedLane> ReplaySequence(const RuleCatalog& catalog,
                                    const Database& initial_db,
                                    const Transition& initial_transition,
                                    const std::vector<RuleIndex>& sequence,
                                    const std::string& label) {
  RuleProcessingState state(&catalog.schema(), catalog.num_rules());
  state.db = initial_db;
  for (Transition& t : state.pending) t = initial_transition;
  std::vector<ObservableEvent> stream;
  ReplayedLane lane;
  for (size_t k = 0; k < sequence.size(); ++k) {
    RuleIndex r = sequence[k];
    if (r < 0 || r >= catalog.num_rules()) {
      return LaneMismatch("sequence " + label + " step " +
                          std::to_string(k + 1) + ": rule index " +
                          std::to_string(r) + " out of range");
    }
    std::vector<RuleIndex> eligible =
        EligibleRules(catalog, TriggeredRules(catalog, state));
    if (!std::binary_search(eligible.begin(), eligible.end(), r)) {
      return LaneMismatch("sequence " + label + " step " +
                          std::to_string(k + 1) + ": rule " +
                          catalog.rule(r).name + " is not eligible");
    }
    STARBURST_ASSIGN_OR_RETURN(StepOutcome outcome,
                               ConsiderRule(catalog, &state, r));
    stream.insert(stream.end(), outcome.observables.begin(),
                  outcome.observables.end());
    if (outcome.rollback) {
      if (k + 1 != sequence.size()) {
        return LaneMismatch("sequence " + label + " step " +
                            std::to_string(k + 1) +
                            ": rollback before the last step");
      }
      lane.rollback = true;
    }
  }
  if (!lane.rollback) {
    if (!TriggeredRules(catalog, state).empty()) {
      return LaneMismatch("sequence " + label +
                          " does not reach quiescence: rules remain "
                          "triggered after the last step");
    }
    lane.final_state = state.db.CanonicalString();
  } else {
    lane.final_state = initial_db.CanonicalString();
  }
  lane.stream = ObservableStreamToString(stream);
  lane.ok = true;
  return lane;
}

}  // namespace

int SharedPrefixLength(const std::vector<RuleIndex>& a,
                       const std::vector<RuleIndex>& b) {
  size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return static_cast<int>(i);
}

bool SelectNoncommutingPair(const PrelimAnalysis& prelim,
                            const std::vector<RuleIndex>& seq_a,
                            const std::vector<RuleIndex>& seq_b,
                            int prefix_len, RuleIndex* i, RuleIndex* j) {
  auto noncommuting = [&prelim](RuleIndex a, RuleIndex b) {
    return a != b &&
           !CommutativityAnalyzer::SyntacticallyCommutePair(prelim, a, b);
  };
  size_t p = static_cast<size_t>(prefix_len);
  // Preferentially the divergence-point pair itself.
  if (p < seq_a.size() && p < seq_b.size() &&
      noncommuting(seq_a[p], seq_b[p])) {
    *i = std::min(seq_a[p], seq_b[p]);
    *j = std::max(seq_a[p], seq_b[p]);
    return true;
  }
  // Otherwise the first non-commuting cross pair over the divergent
  // suffixes (the pair whose reordering the divergence must flow through).
  for (size_t a = p; a < seq_a.size(); ++a) {
    for (size_t b = p; b < seq_b.size(); ++b) {
      if (noncommuting(seq_a[a], seq_b[b])) {
        *i = std::min(seq_a[a], seq_b[b]);
        *j = std::max(seq_a[a], seq_b[b]);
        return true;
      }
    }
  }
  return false;
}

std::vector<TableId> SharedFootprintTables(const PrelimAnalysis& prelim,
                                           RuleIndex i, RuleIndex j) {
  std::vector<TableId> fi = RuleFootprintIndex::FootprintOf(prelim.rule(i));
  std::vector<TableId> fj = RuleFootprintIndex::FootprintOf(prelim.rule(j));
  std::vector<TableId> shared;
  std::set_intersection(fi.begin(), fi.end(), fj.begin(), fj.end(),
                        std::back_inserter(shared));
  return shared;
}

Result<WitnessExtraction> ExtractWitness(const RuleCatalog& catalog,
                                         const Database& initial_db,
                                         const Transition& initial_transition,
                                         const ExplorationResult& result,
                                         const WitnessOptions& options) {
  WitnessExtraction extraction;
  DivergenceWitness::Kind kind;
  std::string target_a;
  std::string target_b;
  if (result.final_states.size() >= 2) {
    // Final-state divergence needs no streams, so dedup_subtrees (which
    // leaves observable_streams empty) does not block this lane.
    kind = DivergenceWitness::Kind::kFinalState;
    auto it = result.final_states.begin();
    target_a = *it++;
    target_b = *it;
  } else if (!result.streams_evaluated) {
    return NotEvaluated(
        "observable streams not evaluated (dedup_subtrees): a stream-only "
        "divergence cannot be witnessed in this mode");
  } else if (result.observable_streams.size() >= 2) {
    kind = DivergenceWitness::Kind::kObservableStream;
    auto it = result.observable_streams.begin();
    target_a = *it++;
    target_b = *it;
  } else {
    extraction.status = WitnessStatus::kNone;
    return extraction;
  }

  Reconstructor reconstructor(catalog, initial_db, initial_transition,
                              options, kind, target_a, target_b);
  STARBURST_RETURN_IF_ERROR(reconstructor.Run());
  if (!reconstructor.both_found()) {
    if (reconstructor.exhausted()) {
      return NotEvaluated("witness reconstruction budget exhausted");
    }
    // The divergent outcomes were unreachable on re-walk: the exploration
    // result does not belong to this (catalog, db, transition) triple.
    return NotEvaluated(
        "divergent outcomes unreachable during reconstruction (stale or "
        "mismatched exploration result)");
  }

  DivergenceWitness w;
  w.kind = kind;
  w.sequence_a = reconstructor.path_a().sequence;
  w.sequence_b = reconstructor.path_b().sequence;
  w.final_a = reconstructor.path_a().final_state;
  w.final_b = reconstructor.path_b().final_state;
  w.stream_a = reconstructor.path_a().stream;
  w.stream_b = reconstructor.path_b().stream;
  w.rollback_a = reconstructor.path_a().rollback;
  w.rollback_b = reconstructor.path_b().rollback;
  w.prefix_len = SharedPrefixLength(w.sequence_a, w.sequence_b);
  size_t p = static_cast<size_t>(w.prefix_len);
  w.diverge_a = p < w.sequence_a.size() ? w.sequence_a[p] : -1;
  w.diverge_b = p < w.sequence_b.size() ? w.sequence_b[p] : -1;
  w.pair_explained = SelectNoncommutingPair(
      catalog.prelim(), w.sequence_a, w.sequence_b, w.prefix_len, &w.pair_i,
      &w.pair_j);
  if (!w.pair_explained) {
    // Fall back to the divergence-point rules so the witness still names
    // the firing choice, even without a Lemma 6.1 explanation.
    w.pair_i = std::min(w.diverge_a, w.diverge_b);
    w.pair_j = std::max(w.diverge_a, w.diverge_b);
  }
  if (w.pair_i >= 0 && w.pair_j >= 0) {
    w.pair_name_i = catalog.rule(w.pair_i).name;
    w.pair_name_j = catalog.rule(w.pair_j).name;
    if (w.pair_explained) {
      w.causes =
          CommutativityAnalyzer::ExplainPair(catalog.prelim(), w.pair_i,
                                             w.pair_j);
      w.overlap_tables =
          SharedFootprintTables(catalog.prelim(), w.pair_i, w.pair_j);
    }
  }
  extraction.status = WitnessStatus::kFound;
  extraction.witness = std::move(w);
  STARBURST_METRIC_COUNT("explorer.witnesses_extracted", 1);
  return extraction;
}

Result<WitnessExtraction> ExtractWitnessAfterStatements(
    const RuleCatalog& catalog, const Database& initial_db,
    const std::vector<std::string>& user_statements,
    const ExplorerOptions& explorer_options,
    const WitnessOptions& witness_options) {
  Database db = initial_db;
  Executor executor(&db);
  Transition initial_transition;
  for (const std::string& sql : user_statements) {
    STARBURST_ASSIGN_OR_RETURN(StmtPtr stmt, Parser::ParseStatement(sql));
    STARBURST_ASSIGN_OR_RETURN(ExecOutcome outcome,
                               executor.Execute(*stmt, nullptr, nullptr));
    if (outcome.rollback) {
      return Status::InvalidArgument(
          "user statements for witness extraction must not roll back");
    }
    STARBURST_RETURN_IF_ERROR(initial_transition.Compose(outcome.delta));
  }
  STARBURST_ASSIGN_OR_RETURN(
      ExplorationResult result,
      Explorer::Explore(catalog, db, initial_transition, explorer_options));
  return ExtractWitness(catalog, db, initial_transition, result,
                        witness_options);
}

Result<WitnessReplay> ReplayWitness(const RuleCatalog& catalog,
                                    const Database& initial_db,
                                    const Transition& initial_transition,
                                    const DivergenceWitness& witness) {
  STARBURST_METRIC_COUNT("explorer.witness_replays", 1);
  WitnessReplay replay;
  STARBURST_ASSIGN_OR_RETURN(
      ReplayedLane lane_a,
      ReplaySequence(catalog, initial_db, initial_transition,
                     witness.sequence_a, "A"));
  if (!lane_a.ok) {
    replay.message = lane_a.message;
    return replay;
  }
  STARBURST_ASSIGN_OR_RETURN(
      ReplayedLane lane_b,
      ReplaySequence(catalog, initial_db, initial_transition,
                     witness.sequence_b, "B"));
  if (!lane_b.ok) {
    replay.message = lane_b.message;
    return replay;
  }
  replay.final_a = lane_a.final_state;
  replay.final_b = lane_b.final_state;
  replay.stream_a = lane_a.stream;
  replay.stream_b = lane_b.stream;
  if (lane_a.rollback != witness.rollback_a ||
      lane_b.rollback != witness.rollback_b) {
    replay.message = "replayed rollback flags do not match the witness";
    return replay;
  }
  if (lane_a.final_state != witness.final_a ||
      lane_b.final_state != witness.final_b) {
    replay.message = "replayed final states do not match the witness";
    return replay;
  }
  if (lane_a.stream != witness.stream_a || lane_b.stream != witness.stream_b) {
    replay.message = "replayed observable streams do not match the witness";
    return replay;
  }
  if (witness.kind == DivergenceWitness::Kind::kFinalState
          ? lane_a.final_state == lane_b.final_state
          : lane_a.stream == lane_b.stream) {
    replay.message = "replayed sequences do not diverge";
    return replay;
  }
  replay.ok = true;
  return replay;
}

std::string WitnessToString(const DivergenceWitness& witness,
                            const RuleCatalog& catalog) {
  auto name = [&catalog](RuleIndex r) -> std::string {
    if (r < 0 || r >= catalog.num_rules()) return "<none>";
    return catalog.rule(r).name;
  };
  auto sequence = [&name](const std::vector<RuleIndex>& seq) {
    if (seq.empty()) return std::string("(no firings)");
    std::string out;
    for (size_t i = 0; i < seq.size(); ++i) {
      if (i > 0) out += " -> ";
      out += name(seq[i]);
    }
    return out;
  };
  std::string out;
  out += witness.kind == DivergenceWitness::Kind::kFinalState
             ? "divergence: two rule-firing orders reach different final "
               "databases (non-confluent, Section 6)\n"
             : "divergence: two rule-firing orders produce different "
               "observable streams (nondeterministic, Section 8)\n";
  out += "  sequence A: " + sequence(witness.sequence_a);
  if (witness.rollback_a) out += "  [rolls back]";
  out += "\n";
  out += "  sequence B: " + sequence(witness.sequence_b);
  if (witness.rollback_b) out += "  [rolls back]";
  out += "\n";
  out += "  first divergence after " + std::to_string(witness.prefix_len) +
         " shared firing(s): A fires " + name(witness.diverge_a) +
         ", B fires " + name(witness.diverge_b) + "\n";
  if (witness.pair_explained) {
    out += "  responsible non-commuting pair: " + witness.pair_name_i +
           " / " + witness.pair_name_j + "\n";
    for (const NoncommutativityCause& cause : witness.causes) {
      out += "    - " +
             cause.Describe(catalog.prelim(), catalog.schema()) + "\n";
    }
    if (!witness.overlap_tables.empty()) {
      out += "  overlapping table(s):";
      for (TableId t : witness.overlap_tables) {
        out += " " + catalog.schema().table(t).name();
      }
      out += "\n";
    }
  } else {
    out += "  no syntactically non-commuting pair explains the divergence "
           "(Lemma 6.1 analysis incomplete for this input)\n";
  }
  if (witness.kind == DivergenceWitness::Kind::kFinalState) {
    out += "  final database A: " + witness.final_a + "\n";
    out += "  final database B: " + witness.final_b + "\n";
  } else {
    out += "  observable stream A:\n" + witness.stream_a;
    out += "  observable stream B:\n" + witness.stream_b;
  }
  return out;
}

}  // namespace starburst
