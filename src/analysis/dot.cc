#include "analysis/dot.h"

#include <vector>

#include "analysis/triggering_graph.h"

namespace starburst {

namespace {

std::string EscapeLabel(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string TriggeringGraphToDot(const RuleCatalog& catalog,
                                 const TerminationReport* termination) {
  const PrelimAnalysis& prelim = catalog.prelim();
  int n = prelim.num_rules();

  // Color rules on cyclic components.
  std::vector<const char*> color(n, nullptr);
  if (termination != nullptr) {
    for (const CycleReport& cycle : termination->cycles) {
      for (RuleIndex r : cycle.rules) {
        color[r] = cycle.discharged ? "orange" : "red";
      }
    }
  }

  std::string out = "digraph triggering_graph {\n";
  out += "  rankdir=LR;\n  node [shape=box, fontname=\"Helvetica\"];\n";
  for (RuleIndex r = 0; r < n; ++r) {
    out += "  r" + std::to_string(r) + " [label=\"" +
           EscapeLabel(prelim.rule(r).name) + "\"";
    if (color[r] != nullptr) {
      out += ", color=";
      out += color[r];
      out += ", penwidth=2";
    }
    out += "];\n";
  }
  TriggeringGraph graph(prelim);
  for (RuleIndex r = 0; r < n; ++r) {
    for (RuleIndex target : graph.OutEdges(r)) {
      out += "  r" + std::to_string(r) + " -> r" + std::to_string(target) +
             ";\n";
    }
  }
  // Priority edges: transitive reduction of the closure, drawn dashed.
  const PriorityOrder& priority = catalog.priority();
  for (RuleIndex hi = 0; hi < n; ++hi) {
    for (RuleIndex lo = 0; lo < n; ++lo) {
      if (hi == lo || !priority.Higher(hi, lo)) continue;
      bool direct = true;
      for (RuleIndex mid = 0; mid < n && direct; ++mid) {
        if (mid != hi && mid != lo && priority.Higher(hi, mid) &&
            priority.Higher(mid, lo)) {
          direct = false;
        }
      }
      if (direct) {
        out += "  r" + std::to_string(hi) + " -> r" + std::to_string(lo) +
               " [style=dashed, color=blue, label=\"precedes\"];\n";
      }
    }
  }
  out += "}\n";
  return out;
}

std::string ExecutionGraphToDot(const ExplorationResult& result,
                                const RuleCatalog& catalog) {
  std::string out = "digraph execution_graph {\n";
  out += "  node [shape=circle, fontname=\"Helvetica\"];\n";
  for (size_t i = 0; i < result.node_is_final.size(); ++i) {
    out += "  s" + std::to_string(i);
    if (result.node_is_final[i]) {
      out += " [shape=doublecircle, color=darkgreen]";
    }
    out += ";\n";
  }
  for (const ExplorationResult::RecordedEdge& edge : result.graph_edges) {
    std::string rule_name =
        edge.rule >= 0 && edge.rule < catalog.num_rules()
            ? catalog.prelim().rule(edge.rule).name
            : "?";
    out += "  s" + std::to_string(edge.from) + " -> s" +
           std::to_string(edge.to) + " [label=\"" + EscapeLabel(rule_name) +
           "\"];\n";
  }
  if (result.graph_truncated) {
    out += "  truncated [shape=plaintext, label=\"(graph truncated)\"];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace starburst
