#ifndef STARBURST_ANALYSIS_PRIORITY_H_
#define STARBURST_ANALYSIS_PRIORITY_H_

#include <string>
#include <vector>

#include "analysis/prelim.h"
#include "common/status.h"
#include "rulelang/ast.h"

namespace starburst {

/// The user-defined priority ordering P of Section 3: a strict partial
/// order over rules, built from the `precedes` / `follows` clauses and
/// closed under transitivity.
///
/// `ri > rj` ("ri has precedence over rj") holds when ri names rj in its
/// precedes list, rj names ri in its follows list, or transitively.
class PriorityOrder {
 public:
  /// Builds the order from the rules' precedes/follows clauses, plus any
  /// `extra` edges (higher, lower) used by the interactive suggestion loop.
  /// Fails with SemanticError when a clause names an unknown rule or the
  /// declared ordering is cyclic (not a partial order).
  static Result<PriorityOrder> Build(
      const PrelimAnalysis& prelim, const std::vector<RuleDef>& rules,
      const std::vector<std::pair<RuleIndex, RuleIndex>>& extra = {});

  /// Builds from explicit edges only (ignores rules' clauses); used by
  /// generated workloads and tests.
  static Result<PriorityOrder> FromEdges(
      int num_rules, const std::vector<std::pair<RuleIndex, RuleIndex>>& edges);

  int num_rules() const { return static_cast<int>(higher_.size()); }

  /// True iff ri > rj in P (including transitively).
  bool Higher(RuleIndex ri, RuleIndex rj) const { return higher_[ri][rj]; }

  /// True when neither ri > rj nor rj > ri (Section 6.2, "unordered").
  bool Unordered(RuleIndex ri, RuleIndex rj) const {
    return !higher_[ri][rj] && !higher_[rj][ri];
  }

  /// Choose(R') of Section 3: the triggered rules in `triggered` with no
  /// higher-priority rule also in `triggered`.
  std::vector<RuleIndex> Choose(const std::vector<RuleIndex>& triggered) const;

  /// Number of ordered pairs (i, j) with i > j.
  int num_ordered_pairs() const;

 private:
  std::vector<std::vector<bool>> higher_;  // higher_[i][j]: i > j
};

}  // namespace starburst

#endif  // STARBURST_ANALYSIS_PRIORITY_H_
