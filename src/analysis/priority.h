#ifndef STARBURST_ANALYSIS_PRIORITY_H_
#define STARBURST_ANALYSIS_PRIORITY_H_

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/prelim.h"
#include "common/status.h"
#include "rulelang/ast.h"

namespace starburst {

/// The user-defined priority ordering P of Section 3: a strict partial
/// order over rules, built from the `precedes` / `follows` clauses and
/// closed under transitivity.
///
/// `ri > rj` ("ri has precedence over rj") holds when ri names rj in its
/// precedes list, rj names ri in its follows list, or transitively.
///
/// The closure is stored sparsely as per-rule sorted neighbor lists rather
/// than an n×n matrix, so a 10k-rule catalog with a handful of priority
/// edges costs memory proportional to the number of ordered pairs.
class PriorityOrder {
 public:
  /// Builds the order from the rules' precedes/follows clauses, plus any
  /// `extra` edges (higher, lower) used by the interactive suggestion loop.
  /// Fails with SemanticError when a clause names an unknown rule or the
  /// declared ordering is cyclic (not a partial order).
  static Result<PriorityOrder> Build(
      const PrelimAnalysis& prelim, const std::vector<RuleDef>& rules,
      const std::vector<std::pair<RuleIndex, RuleIndex>>& extra = {});

  /// Builds from explicit edges only (ignores rules' clauses); used by
  /// generated workloads and tests.
  static Result<PriorityOrder> FromEdges(
      int num_rules, const std::vector<std::pair<RuleIndex, RuleIndex>>& edges);

  int num_rules() const { return n_; }

  /// True iff ri > rj in P (including transitively).
  bool Higher(RuleIndex ri, RuleIndex rj) const {
    const std::vector<RuleIndex>& row = below_[ri];
    return std::binary_search(row.begin(), row.end(), rj);
  }

  /// True when neither ri > rj nor rj > ri (Section 6.2, "unordered").
  bool Unordered(RuleIndex ri, RuleIndex rj) const {
    return !Higher(ri, rj) && !Higher(rj, ri);
  }

  /// True when some rule is below `ri` in P. Only such rules can seed
  /// growth of the Definition 6.5 R1/R2 sets — the sparse confluence scan
  /// uses this to keep disjoint-footprint pairs out of the fixpoint.
  bool HasLowerRule(RuleIndex ri) const { return !below_[ri].empty(); }

  /// Number of partners j with index j > ri that are ordered relative to
  /// ri (either direction). Supports the truncated unordered-pair count in
  /// the sparse confluence scan.
  int NumOrderedPartnersAbove(RuleIndex ri) const {
    const std::vector<RuleIndex>& up = above_[ri];
    const std::vector<RuleIndex>& down = below_[ri];
    return static_cast<int>(
        (up.end() - std::upper_bound(up.begin(), up.end(), ri)) +
        (down.end() - std::upper_bound(down.begin(), down.end(), ri)));
  }

  /// Choose(R') of Section 3: the triggered rules in `triggered` with no
  /// higher-priority rule also in `triggered`.
  std::vector<RuleIndex> Choose(const std::vector<RuleIndex>& triggered) const;

  /// Number of ordered pairs (i, j) with i > j.
  int num_ordered_pairs() const { return static_cast<int>(ordered_pairs_); }

 private:
  /// Closes the direct-edge lists under transitivity and checks strictness.
  /// `prelim` (nullable) supplies rule names for the cyclic-order error.
  Status CloseAndCheck(const PrelimAnalysis* prelim);

  int n_ = 0;
  std::vector<std::vector<RuleIndex>> below_;  // below_[i]: sorted {j : i > j}
  std::vector<std::vector<RuleIndex>> above_;  // above_[i]: sorted {j : j > i}
  long ordered_pairs_ = 0;
};

}  // namespace starburst

#endif  // STARBURST_ANALYSIS_PRIORITY_H_
