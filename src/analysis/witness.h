#ifndef STARBURST_ANALYSIS_WITNESS_H_
#define STARBURST_ANALYSIS_WITNESS_H_

#include <string>
#include <vector>

#include "analysis/commutativity.h"
#include "common/status.h"
#include "engine/database.h"
#include "rules/explorer.h"
#include "rules/rule_catalog.h"

namespace starburst {

/// A minimal divergence witness: the provenance of one non-confluence (or
/// observable-nondeterminism) verdict. When exploration yields two or more
/// final states or observable streams, the witness names two concrete
/// rule-firing sequences from the initial state that end in different
/// outcomes, the first point where they diverge, and the Lemma 6.1
/// explanation — the responsible non-commuting rule pair, the violated
/// conditions, and the overlapping tables (via RuleFootprintIndex).
///
/// Witnesses are *checked, not trusted*: ReplayWitness() re-executes both
/// sequences through the rule processor and asserts they reproduce the
/// divergent fingerprints / streams (the witness_replay fuzz oracle pins
/// this end-to-end).
struct DivergenceWitness {
  /// What diverges between the two sequences.
  ///
  ///   kFinalState         the sequences reach different final databases
  ///                       (Section 6 non-confluence).
  ///   kObservableStream   the final database is unique but the observable
  ///                       streams differ (Section 8 nondeterminism).
  enum class Kind { kFinalState, kObservableStream };
  Kind kind = Kind::kFinalState;

  /// The two complete rule-firing sequences (rule indices, in firing
  /// order), each running from the shared initial state to quiescence or
  /// rollback. Sequence A leads to the lexicographically smaller outcome.
  std::vector<RuleIndex> sequence_a;
  std::vector<RuleIndex> sequence_b;

  /// Length of the shared prefix: sequence_a[i] == sequence_b[i] for all
  /// i < prefix_len, and the sequences differ at prefix_len (unless one is
  /// a proper prefix of the other, in which case diverge_* is -1 for the
  /// exhausted side).
  int prefix_len = 0;
  /// The rules chosen at the first divergence point (-1 when that sequence
  /// ends exactly at the divergence point).
  RuleIndex diverge_a = -1;
  RuleIndex diverge_b = -1;

  /// The responsible non-commuting pair per Lemma 6.1 (normalized i < j).
  /// Preferentially the divergence-point pair itself; otherwise the first
  /// non-commuting pair across the two divergent suffixes. When even that
  /// fails (every cross pair commutes syntactically — possible only if the
  /// static analysis is incomplete w.r.t. this input), pair_explained is
  /// false and the divergence-point rules are reported with empty causes.
  RuleIndex pair_i = -1;
  RuleIndex pair_j = -1;
  std::string pair_name_i;
  std::string pair_name_j;
  bool pair_explained = false;
  /// The violated Lemma 6.1 conditions for (pair_i, pair_j), both
  /// directions (CommutativityAnalyzer::ExplainPair).
  std::vector<NoncommutativityCause> causes;
  /// Footprint-table intersection of the pair: the concrete tables on which
  /// the two rules can conflict (RuleFootprintIndex::FootprintOf).
  std::vector<TableId> overlap_tables;

  /// The divergent outcomes, exactly as the explorer reports them: final_*
  /// are canonical database strings, stream_* are
  /// ObservableStreamToString() renderings. final_a < final_b for
  /// kFinalState; stream_a < stream_b for kObservableStream.
  std::string final_a;
  std::string final_b;
  std::string stream_a;
  std::string stream_b;
  /// Whether each sequence ends in a ROLLBACK (its final database is then
  /// the initial database).
  bool rollback_a = false;
  bool rollback_b = false;
};

/// Three-valued extraction status, matching the explorer's
/// ObservableDeterminism convention (PR6).
enum class WitnessStatus {
  /// A witness was reconstructed (the exploration was divergent).
  kFound,
  /// The exploration was not divergent: no witness exists.
  kNone,
  /// Extraction could not run to a verdict: reconstruction budget
  /// exhausted, or the divergence is stream-only and streams were not
  /// enumerated (ExplorerOptions::dedup_subtrees). `note` says which.
  kNotEvaluated,
};

struct WitnessExtraction {
  WitnessStatus status = WitnessStatus::kNone;
  DivergenceWitness witness;  // meaningful only when status == kFound
  /// Human-readable reason when status == kNotEvaluated (empty otherwise).
  std::string note;
};

/// Budgets for witness reconstruction (a fresh bounded DFS over the
/// execution graph; the defaults match ExplorerOptions).
struct WitnessOptions {
  int max_depth = 64;
  long max_total_steps = 200000;
};

/// Length of the longest shared prefix of two rule sequences.
int SharedPrefixLength(const std::vector<RuleIndex>& a,
                       const std::vector<RuleIndex>& b);

/// Picks the responsible non-commuting pair for two sequences diverging at
/// `prefix_len`: the divergence-point pair if it fails Lemma 6.1, else the
/// first non-commuting cross pair over the divergent suffixes (suffix-a
/// outer, suffix-b inner, in order). Returns false when every cross pair
/// commutes syntactically; *i/*j are then untouched.
bool SelectNoncommutingPair(const PrelimAnalysis& prelim,
                            const std::vector<RuleIndex>& seq_a,
                            const std::vector<RuleIndex>& seq_b,
                            int prefix_len, RuleIndex* i, RuleIndex* j);

/// Footprint-table intersection of two rules (sorted ascending).
std::vector<TableId> SharedFootprintTables(const PrelimAnalysis& prelim,
                                           RuleIndex i, RuleIndex j);

/// Reconstructs a minimal divergence witness for `result`, which must come
/// from exploring (catalog, initial_db, initial_transition). Reconstruction
/// re-walks the execution graph deterministically (eligible rules in
/// ascending index order, no reduction), so the two sequences found are the
/// lexicographically-first paths to the two lexicographically-smallest
/// divergent outcomes — stable across explorer backends, thread counts, and
/// POR modes.
///
/// Status semantics:
///   - result has >= 2 final states          -> kFound (kind kFinalState)
///   - else >= 2 observable streams          -> kFound (kind kObservableStream)
///   - else, streams not evaluated
///     (dedup_subtrees)                      -> kNotEvaluated
///   - else                                  -> kNone
/// Reconstruction-budget exhaustion before both target outcomes are reached
/// also yields kNotEvaluated. Bumps the explorer.witnesses_extracted metric
/// counter on kFound.
Result<WitnessExtraction> ExtractWitness(const RuleCatalog& catalog,
                                         const Database& initial_db,
                                         const Transition& initial_transition,
                                         const ExplorationResult& result,
                                         const WitnessOptions& options = {});

/// Convenience mirroring Explorer::ExploreAfterStatements: applies
/// `user_statements` to a copy of `initial_db`, explores with
/// `explorer_options`, then extracts a witness from the result.
Result<WitnessExtraction> ExtractWitnessAfterStatements(
    const RuleCatalog& catalog, const Database& initial_db,
    const std::vector<std::string>& user_statements,
    const ExplorerOptions& explorer_options = {},
    const WitnessOptions& witness_options = {});

/// The verdict of re-executing a witness through the rule processor.
struct WitnessReplay {
  /// True when both sequences replayed exactly (every step eligible, right
  /// termination mode) and reproduced the witness's divergent outcomes.
  bool ok = false;
  /// What went wrong when !ok.
  std::string message;
  /// The replayed outcomes (canonical final databases and serialized
  /// streams), for diagnostics.
  std::string final_a;
  std::string final_b;
  std::string stream_a;
  std::string stream_b;
};

/// Re-executes both witness sequences step by step from (initial_db,
/// initial_transition): each forced rule must be eligible at its step, a
/// rollback must be the last step of its sequence, and after the last step
/// no rule may remain triggered. The replayed final states / streams must
/// match the witness fields exactly, and the pair declared divergent must
/// actually differ. Engine-level failures surface as a non-ok Result;
/// semantic mismatches (a forged or stale witness) return ok == false with
/// a message. Bumps the explorer.witness_replays metric counter.
Result<WitnessReplay> ReplayWitness(const RuleCatalog& catalog,
                                    const Database& initial_db,
                                    const Transition& initial_transition,
                                    const DivergenceWitness& witness);

/// Renders the witness as a human-readable divergence story (the
/// tools/explain output body).
std::string WitnessToString(const DivergenceWitness& witness,
                            const RuleCatalog& catalog);

}  // namespace starburst

#endif  // STARBURST_ANALYSIS_WITNESS_H_
