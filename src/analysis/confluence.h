#ifndef STARBURST_ANALYSIS_CONFLUENCE_H_
#define STARBURST_ANALYSIS_CONFLUENCE_H_

#include <set>
#include <utility>
#include <vector>

#include "analysis/commutativity.h"
#include "analysis/priority.h"

namespace starburst {

/// One violation of the Confluence Requirement: the unordered pair
/// (pair_i, pair_j) generated sets R1, R2 containing a witness pair
/// (r1, r2) that does not commute. In the most common case r1 = pair_i and
/// r2 = pair_j (Corollary 6.8).
struct ConfluenceViolation {
  RuleIndex pair_i = -1;
  RuleIndex pair_j = -1;
  RuleIndex r1 = -1;
  RuleIndex r2 = -1;
  std::vector<RuleIndex> set_r1;
  std::vector<RuleIndex> set_r2;
  std::vector<NoncommutativityCause> causes;
};

/// Result of confluence analysis (Theorem 6.7). `confluent` requires both
/// the Confluence Requirement and termination (passed in by the caller,
/// since termination is analyzed separately per Section 5).
struct ConfluenceReport {
  /// The Confluence Requirement (Definition 6.5) holds for every unordered
  /// pair.
  bool requirement_holds = false;
  /// Termination prerequisite as supplied by the caller.
  bool termination_guaranteed = false;
  /// requirement_holds && termination_guaranteed (Theorem 6.7).
  bool confluent = false;
  std::vector<ConfluenceViolation> violations;
  /// Statistics for experiments.
  int unordered_pairs_checked = 0;
  size_t max_set_size = 0;  // largest |R1| or |R2| encountered
};

/// Confluence analysis per Section 6: for every pair of unordered rules,
/// build the mutually recursive sets R1 and R2 of Definition 6.5 and check
/// all of R1 × R2 pairwise for commutativity.
class ConfluenceAnalyzer {
 public:
  /// `commutativity` and `priority` must outlive the analyzer and cover
  /// the same rule set.
  ConfluenceAnalyzer(const CommutativityAnalyzer& commutativity,
                     const PriorityOrder& priority)
      : commutativity_(commutativity), priority_(priority) {}

  /// The Definition 6.5 fixpoint for the unordered pair (ri, rj), over all
  /// rules. Exposed for the R1/R2-growth experiment (Figures 3/4).
  std::pair<std::vector<RuleIndex>, std::vector<RuleIndex>> BuildSets(
      RuleIndex ri, RuleIndex rj) const;

  /// As above, with candidates restricted to `members` (used when R is
  /// Sig(T') for partial confluence). `members` must contain ri and rj.
  std::pair<std::vector<RuleIndex>, std::vector<RuleIndex>> BuildSetsWithin(
      RuleIndex ri, RuleIndex rj, const std::vector<bool>& members) const;

  /// Analyzes all rules. `termination_guaranteed` is the Section 5 verdict;
  /// `max_violations` bounds the report size (0 = first violation stops,
  /// negative = unlimited).
  ConfluenceReport Analyze(bool termination_guaranteed,
                           int max_violations = -1) const;

  /// Analyzes the subset `members` only (unordered pairs within the
  /// subset, Definition 6.5 relative to the subset).
  ConfluenceReport AnalyzeSubset(const std::vector<RuleIndex>& members,
                                 bool termination_guaranteed,
                                 int max_violations = -1) const;

 private:
  ConfluenceReport AnalyzeImpl(const std::vector<RuleIndex>& members,
                               bool termination_guaranteed,
                               int max_violations) const;

  const CommutativityAnalyzer& commutativity_;
  const PriorityOrder& priority_;
};

/// Sparse confluence scan over the full rule set, driven by the per-rule
/// noncommute adjacency maintained by the incremental analyzer instead of
/// a dense commutativity matrix.
///
/// The scan materializes a pair (a, b) only when it can matter:
///   - the pair can *grow* beyond singleton sets — possible only when
///     can-seed(a) or can-seed(b), where can-seed(x) ⇔ some rule triggered
///     by x has a lower-priority rule (a sound over-approximation of the
///     first Definition 6.5 growth step); or
///   - the singleton pair is syntactically noncommutative (b appears in
///     noncommute[a]).
/// Every other unordered pair keeps singleton sets {a}, {b} that commute,
/// so it contributes to the statistics but cannot produce a violation; the
/// statistics are reconstructed in closed form. Verdicts, violations (and
/// their order), and statistics are bit-identical to ConfluenceAnalyzer
/// over the same rule set.
class SparseConfluenceAnalyzer {
 public:
  /// `noncommute[i]` must be the sorted list of rules j ≠ i that fail the
  /// Lemma 6.1 syntactic check against i (symmetric, certifications NOT
  /// applied). All references must outlive the analyzer.
  SparseConfluenceAnalyzer(
      const PrelimAnalysis& prelim, const PriorityOrder& priority,
      const std::vector<std::vector<RuleIndex>>& noncommute,
      const CommutativityCertifications& certifications);

  /// Mirrors ConfluenceAnalyzer::Analyze over the full rule set.
  ConfluenceReport Analyze(bool termination_guaranteed,
                           int max_violations = -1) const;

  /// True when i and j are (conservatively) guaranteed to commute, with
  /// certifications applied — the sparse equivalent of
  /// CommutativityAnalyzer::Commute.
  bool Commute(RuleIndex i, RuleIndex j) const;

 private:
  const PrelimAnalysis& prelim_;
  const PriorityOrder& priority_;
  const std::vector<std::vector<RuleIndex>>& noncommute_;
  /// Certified pairs resolved to normalized (lo, hi) index pairs.
  std::set<std::pair<RuleIndex, RuleIndex>> certified_;
};

}  // namespace starburst

#endif  // STARBURST_ANALYSIS_CONFLUENCE_H_
