#ifndef STARBURST_ANALYSIS_CONFLUENCE_H_
#define STARBURST_ANALYSIS_CONFLUENCE_H_

#include <utility>
#include <vector>

#include "analysis/commutativity.h"
#include "analysis/priority.h"

namespace starburst {

/// One violation of the Confluence Requirement: the unordered pair
/// (pair_i, pair_j) generated sets R1, R2 containing a witness pair
/// (r1, r2) that does not commute. In the most common case r1 = pair_i and
/// r2 = pair_j (Corollary 6.8).
struct ConfluenceViolation {
  RuleIndex pair_i = -1;
  RuleIndex pair_j = -1;
  RuleIndex r1 = -1;
  RuleIndex r2 = -1;
  std::vector<RuleIndex> set_r1;
  std::vector<RuleIndex> set_r2;
  std::vector<NoncommutativityCause> causes;
};

/// Result of confluence analysis (Theorem 6.7). `confluent` requires both
/// the Confluence Requirement and termination (passed in by the caller,
/// since termination is analyzed separately per Section 5).
struct ConfluenceReport {
  /// The Confluence Requirement (Definition 6.5) holds for every unordered
  /// pair.
  bool requirement_holds = false;
  /// Termination prerequisite as supplied by the caller.
  bool termination_guaranteed = false;
  /// requirement_holds && termination_guaranteed (Theorem 6.7).
  bool confluent = false;
  std::vector<ConfluenceViolation> violations;
  /// Statistics for experiments.
  int unordered_pairs_checked = 0;
  size_t max_set_size = 0;  // largest |R1| or |R2| encountered
};

/// Confluence analysis per Section 6: for every pair of unordered rules,
/// build the mutually recursive sets R1 and R2 of Definition 6.5 and check
/// all of R1 × R2 pairwise for commutativity.
class ConfluenceAnalyzer {
 public:
  /// `commutativity` and `priority` must outlive the analyzer and cover
  /// the same rule set.
  ConfluenceAnalyzer(const CommutativityAnalyzer& commutativity,
                     const PriorityOrder& priority)
      : commutativity_(commutativity), priority_(priority) {}

  /// The Definition 6.5 fixpoint for the unordered pair (ri, rj), over all
  /// rules. Exposed for the R1/R2-growth experiment (Figures 3/4).
  std::pair<std::vector<RuleIndex>, std::vector<RuleIndex>> BuildSets(
      RuleIndex ri, RuleIndex rj) const;

  /// As above, with candidates restricted to `members` (used when R is
  /// Sig(T') for partial confluence). `members` must contain ri and rj.
  std::pair<std::vector<RuleIndex>, std::vector<RuleIndex>> BuildSetsWithin(
      RuleIndex ri, RuleIndex rj, const std::vector<bool>& members) const;

  /// Analyzes all rules. `termination_guaranteed` is the Section 5 verdict;
  /// `max_violations` bounds the report size (0 = first violation stops,
  /// negative = unlimited).
  ConfluenceReport Analyze(bool termination_guaranteed,
                           int max_violations = -1) const;

  /// Analyzes the subset `members` only (unordered pairs within the
  /// subset, Definition 6.5 relative to the subset).
  ConfluenceReport AnalyzeSubset(const std::vector<RuleIndex>& members,
                                 bool termination_guaranteed,
                                 int max_violations = -1) const;

 private:
  ConfluenceReport AnalyzeImpl(const std::vector<RuleIndex>& members,
                               bool termination_guaranteed,
                               int max_violations) const;

  const CommutativityAnalyzer& commutativity_;
  const PriorityOrder& priority_;
};

}  // namespace starburst

#endif  // STARBURST_ANALYSIS_CONFLUENCE_H_
