#ifndef STARBURST_ANALYSIS_TRIGGERING_GRAPH_H_
#define STARBURST_ANALYSIS_TRIGGERING_GRAPH_H_

#include <vector>

#include "analysis/prelim.h"

namespace starburst {

/// The triggering graph TG_R of Section 5: nodes are rules, with an edge
/// ri -> rj iff rj ∈ Triggers(ri). Theorem 5.1: if TG_R is acyclic the
/// rule set is guaranteed to terminate.
class TriggeringGraph {
 public:
  /// Builds the graph over all rules of `prelim`.
  explicit TriggeringGraph(const PrelimAnalysis& prelim);

  /// Builds the graph over the subset `members` only (edges within the
  /// subset). Used for partial confluence, which needs termination of
  /// Sig(T') in isolation (Section 7), and for restricted-operation
  /// analysis.
  TriggeringGraph(const PrelimAnalysis& prelim,
                  const std::vector<RuleIndex>& members);

  int num_rules() const { return static_cast<int>(adjacency_.size()); }

  /// Out-edges of rule `r` (global rule indices, ascending).
  const std::vector<RuleIndex>& OutEdges(RuleIndex r) const;

  bool HasEdge(RuleIndex from, RuleIndex to) const;

  /// Strongly connected components (Tarjan), in reverse topological order.
  /// Each component lists global rule indices.
  const std::vector<std::vector<RuleIndex>>& Components() const {
    return components_;
  }

  /// Components that contain a cycle: size > 1, or a single rule with a
  /// self-loop (a rule that can trigger itself).
  std::vector<std::vector<RuleIndex>> CyclicComponents() const;

  bool IsAcyclic() const { return CyclicComponents().empty(); }

  /// True when the subgraph of `nodes` minus the rules in `removed`
  /// is acyclic. Used to check that user cycle certifications discharge
  /// every cycle of a component (Section 5's interactive analysis).
  bool AcyclicWithout(const std::vector<RuleIndex>& nodes,
                      const std::vector<RuleIndex>& removed) const;

 private:
  void ComputeComponents();

  std::vector<bool> is_member_;                    // global index -> in graph
  std::vector<std::vector<RuleIndex>> adjacency_;  // global index -> edges
  std::vector<std::vector<RuleIndex>> components_;
};

}  // namespace starburst

#endif  // STARBURST_ANALYSIS_TRIGGERING_GRAPH_H_
