#ifndef STARBURST_ANALYSIS_TRIGGERING_GRAPH_H_
#define STARBURST_ANALYSIS_TRIGGERING_GRAPH_H_

#include <vector>

#include "analysis/prelim.h"

namespace starburst {

/// The triggering graph TG_R of Section 5: nodes are rules, with an edge
/// ri -> rj iff rj ∈ Triggers(ri). Theorem 5.1: if TG_R is acyclic the
/// rule set is guaranteed to terminate.
class TriggeringGraph {
 public:
  /// Builds the graph over all rules of `prelim`.
  explicit TriggeringGraph(const PrelimAnalysis& prelim);

  /// Builds the graph over the subset `members` only (edges within the
  /// subset). Used for partial confluence, which needs termination of
  /// Sig(T') in isolation (Section 7), and for restricted-operation
  /// analysis.
  TriggeringGraph(const PrelimAnalysis& prelim,
                  const std::vector<RuleIndex>& members);

  int num_rules() const { return static_cast<int>(adjacency_.size()); }

  /// Out-edges of rule `r` (global rule indices, ascending).
  const std::vector<RuleIndex>& OutEdges(RuleIndex r) const;

  bool HasEdge(RuleIndex from, RuleIndex to) const;

  /// Strongly connected components (Tarjan), in reverse topological order.
  /// Each component lists global rule indices, ascending. Materialized on
  /// demand: the components are stored flat (one array + offsets) so that
  /// a 10k-rule catalog does not pay 10k vector allocations per graph.
  std::vector<std::vector<RuleIndex>> Components() const;

  /// Components that contain a cycle: size > 1, or a single rule with a
  /// self-loop (a rule that can trigger itself).
  std::vector<std::vector<RuleIndex>> CyclicComponents() const;

  bool IsAcyclic() const { return CyclicComponents().empty(); }

  /// True when the subgraph of `nodes` minus the rules in `removed`
  /// is acyclic. Used to check that user cycle certifications discharge
  /// every cycle of a component (Section 5's interactive analysis).
  bool AcyclicWithout(const std::vector<RuleIndex>& nodes,
                      const std::vector<RuleIndex>& removed) const;

 private:
  void ComputeComponents();

  std::vector<bool> is_member_;                    // global index -> in graph
  std::vector<std::vector<RuleIndex>> adjacency_;  // global index -> edges
  /// Flat SCC storage: component c is comp_nodes_[comp_start_[c] ..
  /// comp_start_[c + 1]), sorted ascending; components in reverse
  /// topological order.
  std::vector<RuleIndex> comp_nodes_;
  std::vector<int> comp_start_;
};

}  // namespace starburst

#endif  // STARBURST_ANALYSIS_TRIGGERING_GRAPH_H_
