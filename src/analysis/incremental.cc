#include "analysis/incremental.h"

#include <cstdint>
#include <utility>

#include "analysis/priority.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace starburst {

IncrementalAnalyzer::IncrementalAnalyzer(
    const Schema* schema, CommutativityCertifications certifications)
    : schema_(schema), certifications_(std::move(certifications)) {}

const std::string& IncrementalAnalyzer::rule_name(RuleIndex i) const {
  return prelim_.rule(i).name;
}

void IncrementalAnalyzer::RebuildPriorityEdges() {
  int n = prelim_.num_rules();
  prio_out_.assign(n, {});
  have_dangling_ = false;
  for (int i = 0; i < n; ++i) {
    for (const std::string& other : rules_[i].precedes) {
      RuleIndex j = prelim_.FindRule(other);
      if (j < 0) {
        have_dangling_ = true;
        continue;
      }
      prio_out_[i].push_back(j);
    }
    for (const std::string& other : rules_[i].follows) {
      RuleIndex j = prelim_.FindRule(other);
      if (j < 0) {
        have_dangling_ = true;
        continue;
      }
      prio_out_[j].push_back(i);
    }
  }
  prio_edges_stale_ = have_dangling_;
}

Status IncrementalAnalyzer::CheckPriorityAcyclic(
    const std::vector<RuleIndex>& out_targets,
    const std::vector<RuleIndex>& in_sources) const {
  if (out_targets.empty() || in_sources.empty()) return Status::OK();
  int n = prelim_.num_rules();
  std::vector<char> is_source(n, 0);
  for (RuleIndex s : in_sources) is_source[s] = 1;
  // DFS from the new rule's lower neighbors; reaching a higher neighbor
  // closes a cycle through the new rule. Parents reconstruct the path.
  std::vector<RuleIndex> parent(n, -2);  // -2 = unvisited, -1 = DFS root
  std::vector<RuleIndex> stack;
  RuleIndex hit = -1;
  for (RuleIndex t : out_targets) {
    if (parent[t] != -2) continue;
    parent[t] = -1;
    if (is_source[t]) {
      hit = t;
      break;
    }
    stack.push_back(t);
  }
  while (hit < 0 && !stack.empty()) {
    RuleIndex v = stack.back();
    stack.pop_back();
    for (RuleIndex w : prio_out_[v]) {
      if (parent[w] != -2) continue;
      parent[w] = v;
      if (is_source[w]) {
        hit = w;
        break;
      }
      stack.push_back(w);
    }
  }
  if (hit < 0) return Status::OK();
  RuleIndex min_node = hit;
  for (RuleIndex v = parent[hit]; v >= 0; v = parent[v]) {
    min_node = std::min(min_node, v);
  }
  const std::string& who = prelim_.rule(min_node).name;
  return Status::SemanticError(
      "priority ordering is cyclic (rule '" + who +
      "' transitively precedes itself); precedes/follows must define a "
      "partial order");
}

Status IncrementalAnalyzer::AddRule(RuleDef rule) {
  if (prelim_.FindRule(rule.name) >= 0) {
    return Status::SemanticError("duplicate rule name '" + rule.name + "'");
  }
  auto computed = PrelimAnalysis::ComputeRule(*schema_, rule);
  ++rule_validations_;
  if (!computed.ok()) return computed.status();

  // Validate the new rule's priority clauses against the committed set.
  if (prio_edges_stale_) RebuildPriorityEdges();
  std::vector<RuleIndex> out_targets, in_sources;
  for (const std::string& other : rule.precedes) {
    if (EqualsIgnoreCase(other, rule.name)) {
      return Status::SemanticError(
          "priority ordering is cyclic (rule '" + rule.name +
          "' transitively precedes itself); precedes/follows must define a "
          "partial order");
    }
    RuleIndex j = prelim_.FindRule(other);
    if (j < 0) {
      return Status::SemanticError("rule '" + rule.name +
                                   "' precedes unknown rule '" + other + "'");
    }
    out_targets.push_back(j);
  }
  for (const std::string& other : rule.follows) {
    if (EqualsIgnoreCase(other, rule.name)) {
      return Status::SemanticError(
          "priority ordering is cyclic (rule '" + rule.name +
          "' transitively precedes itself); precedes/follows must define a "
          "partial order");
    }
    RuleIndex j = prelim_.FindRule(other);
    if (j < 0) {
      return Status::SemanticError("rule '" + rule.name +
                                   "' follows unknown rule '" + other + "'");
    }
    in_sources.push_back(j);
  }
  STARBURST_RETURN_IF_ERROR(CheckPriorityAcyclic(out_targets, in_sources));

  // Commit.
  RuleIndex n = prelim_.AppendComputed(std::move(computed).value());
  rules_.push_back(std::move(rule));
  term_cache_.rule_versions[ToLower(rules_.back().name)] = next_version_++;
  noncommute_.emplace_back();
  dirty_.push_back(1);
  if (!prio_edges_stale_) {
    prio_out_.push_back(std::move(out_targets));
    for (RuleIndex s : in_sources) prio_out_[s].push_back(n);
  }
  overlap_pairs_ +=
      static_cast<long>(prelim_.index().OverlapCandidates(n).size());
  return Status::OK();
}

Status IncrementalAnalyzer::RemoveRule(const std::string& name) {
  RuleIndex r = prelim_.FindRule(name);
  if (r < 0) return Status::NotFound("no rule named '" + name + "'");
  overlap_pairs_ -=
      static_cast<long>(prelim_.index().OverlapCandidates(r).size());
  for (std::vector<RuleIndex>& row : noncommute_) {
    auto it = std::lower_bound(row.begin(), row.end(), r);
    if (it != row.end() && *it == r) it = row.erase(it);
    for (; it != row.end(); ++it) --*it;
  }
  noncommute_.erase(noncommute_.begin() + r);
  dirty_.erase(dirty_.begin() + r);
  term_cache_.rule_versions.erase(ToLower(rules_[r].name));
  rules_.erase(rules_.begin() + r);
  prelim_.RemoveRuleAt(r);
  // Indices shifted; rebuild the direct priority edges lazily.
  prio_out_.clear();
  prio_edges_stale_ = true;
  return Status::OK();
}

Result<IncrementalAnalyzer::RunResult> IncrementalAnalyzer::Analyze(
    const TerminationCertifications& certs, int max_violations) {
  // Full clause resolution every analysis: this is where dangling
  // precedes/follows left by RemoveRule surface as errors.
  STARBURST_ASSIGN_OR_RETURN(PriorityOrder priority,
                             PriorityOrder::Build(prelim_, rules_));
  RunResult result;

  // Pair sweep over dirty rules only. A dirty rule is always newly added
  // (a redefinition is Remove + Add), so its noncommute row is empty and
  // there are no stale verdicts to purge. Misses are computed in parallel
  // (each verdict is a pure function of the pair), then folded back
  // sequentially — the adjacency and the counters are identical for any
  // thread count.
  int n = prelim_.num_rules();
  struct Miss {
    RuleIndex d;
    RuleIndex c;
  };
  std::vector<Miss> misses;
  for (RuleIndex d = 0; d < n; ++d) {
    if (!dirty_[d]) continue;
    for (RuleIndex c : prelim_.index().OverlapCandidates(d)) {
      if (dirty_[c] && c < d) continue;  // pair enumerated from c's sweep
      misses.push_back({d, c});
    }
  }
  std::vector<uint8_t> verdicts(misses.size(), 0);
  ParallelFor(misses.size(), 8, [&](size_t begin, size_t end) {
    for (size_t k = begin; k < end; ++k) {
      verdicts[k] = CommutativityAnalyzer::SyntacticallyCommutePair(
                        prelim_, misses[k].d, misses[k].c)
                        ? 1
                        : 0;
    }
  });
  std::vector<RuleIndex> touched;
  for (size_t k = 0; k < misses.size(); ++k) {
    if (verdicts[k] != 0) continue;
    noncommute_[misses[k].d].push_back(misses[k].c);
    noncommute_[misses[k].c].push_back(misses[k].d);
    touched.push_back(misses[k].d);
    touched.push_back(misses[k].c);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (RuleIndex t : touched) {
    std::sort(noncommute_[t].begin(), noncommute_[t].end());
  }
  std::fill(dirty_.begin(), dirty_.end(), 0);
  result.stats.pair_checks_computed = static_cast<long>(misses.size());
  result.stats.pair_checks_reused =
      overlap_pairs_ - result.stats.pair_checks_computed;
  STARBURST_METRIC_COUNT("analysis.pair_cache_hits",
                         result.stats.pair_checks_reused);
  STARBURST_METRIC_COUNT("analysis.pair_cache_misses",
                         result.stats.pair_checks_computed);

  long hits_before = term_cache_.hits;
  long misses_before = term_cache_.misses;
  result.termination = TerminationAnalyzer::Analyze(prelim_, certs,
                                                    &term_cache_);
  result.stats.termination_components_reused = term_cache_.hits - hits_before;
  result.stats.termination_components_recomputed =
      term_cache_.misses - misses_before;

  SparseConfluenceAnalyzer confluence(prelim_, priority, noncommute_,
                                      certifications_);
  result.confluence =
      confluence.Analyze(result.termination.guaranteed, max_violations);
  return result;
}

}  // namespace starburst
