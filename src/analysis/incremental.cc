#include "analysis/incremental.h"

#include <cstdint>

#include "analysis/priority.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace starburst {

namespace {

std::pair<std::string, std::string> PairKey(const std::string& a,
                                            const std::string& b) {
  std::string x = ToLower(a);
  std::string y = ToLower(b);
  if (y < x) std::swap(x, y);
  return {std::move(x), std::move(y)};
}

}  // namespace

IncrementalAnalyzer::IncrementalAnalyzer(
    const Schema* schema, CommutativityCertifications certifications)
    : schema_(schema), certifications_(std::move(certifications)) {}

Status IncrementalAnalyzer::AddRule(RuleDef rule) {
  // Validate against the current set before committing.
  std::vector<RuleDef> candidate;
  candidate.reserve(rules_.size() + 1);
  for (const RuleDef& r : rules_) candidate.push_back(r.Clone());
  candidate.push_back(rule.Clone());
  auto prelim = PrelimAnalysis::Compute(*schema_, candidate);
  if (!prelim.ok()) return prelim.status();
  auto priority = PriorityOrder::Build(prelim.value(), candidate);
  if (!priority.ok()) return priority.status();
  rules_.push_back(std::move(rule));
  return Status::OK();
}

Status IncrementalAnalyzer::RemoveRule(const std::string& name) {
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (EqualsIgnoreCase(rules_[i].name, name)) {
      std::string key = ToLower(name);
      for (auto it = pair_cache_.begin(); it != pair_cache_.end();) {
        if (it->first.first == key || it->first.second == key) {
          it = pair_cache_.erase(it);
        } else {
          ++it;
        }
      }
      rules_.erase(rules_.begin() + static_cast<long>(i));
      return Status::OK();
    }
  }
  return Status::NotFound("no rule named '" + name + "'");
}

Result<IncrementalAnalyzer::RunResult> IncrementalAnalyzer::Analyze(
    const TerminationCertifications& certs, int max_violations) {
  STARBURST_ASSIGN_OR_RETURN(PrelimAnalysis prelim,
                             PrelimAnalysis::Compute(*schema_, rules_));
  STARBURST_ASSIGN_OR_RETURN(PriorityOrder priority,
                             PriorityOrder::Build(prelim, rules_));
  RunResult result;

  // Build the syntactic matrix, reusing cached pair verdicts. Misses are
  // collected first, computed in parallel (each verdict is a pure function
  // of the pair), then folded back into the cache sequentially — so the
  // cache contents, the matrix, and the reuse counters are identical for
  // any thread count.
  int n = prelim.num_rules();
  std::vector<std::vector<bool>> syntactic(n, std::vector<bool>(n, false));
  struct Miss {
    RuleIndex i;
    RuleIndex j;
    std::pair<std::string, std::string> key;
  };
  std::vector<Miss> misses;
  for (RuleIndex i = 0; i < n; ++i) {
    syntactic[i][i] = true;
    for (RuleIndex j = i + 1; j < n; ++j) {
      auto key = PairKey(prelim.rule(i).name, prelim.rule(j).name);
      auto it = pair_cache_.find(key);
      if (it != pair_cache_.end()) {
        ++result.stats.pair_checks_reused;
        syntactic[i][j] = syntactic[j][i] = it->second;
      } else {
        misses.push_back({i, j, std::move(key)});
      }
    }
  }
  std::vector<uint8_t> verdicts(misses.size(), 0);
  ParallelFor(misses.size(), 8, [&](size_t begin, size_t end) {
    for (size_t k = begin; k < end; ++k) {
      verdicts[k] = CommutativityAnalyzer::SyntacticallyCommutePair(
                        prelim, misses[k].i, misses[k].j)
                        ? 1
                        : 0;
    }
  });
  for (size_t k = 0; k < misses.size(); ++k) {
    bool verdict = verdicts[k] != 0;
    syntactic[misses[k].i][misses[k].j] =
        syntactic[misses[k].j][misses[k].i] = verdict;
    pair_cache_.emplace(std::move(misses[k].key), verdict);
    ++result.stats.pair_checks_computed;
  }
  STARBURST_METRIC_COUNT("analysis.pair_cache_hits",
                         result.stats.pair_checks_reused);
  STARBURST_METRIC_COUNT("analysis.pair_cache_misses",
                         result.stats.pair_checks_computed);
  CommutativityAnalyzer commutativity(prelim, *schema_, certifications_,
                                      std::move(syntactic));
  result.termination = TerminationAnalyzer::Analyze(prelim, certs);
  ConfluenceAnalyzer confluence(commutativity, priority);
  result.confluence =
      confluence.Analyze(result.termination.guaranteed, max_violations);
  return result;
}

}  // namespace starburst
