#ifndef STARBURST_ANALYSIS_REPORT_H_
#define STARBURST_ANALYSIS_REPORT_H_

#include <string>

#include "analysis/analyzer.h"

namespace starburst {

/// Human-readable report rendering for the interactive development
/// environment. All functions take the catalog for rule/table names.

std::string TerminationReportToString(const TerminationReport& report,
                                      const RuleCatalog& catalog);

std::string ConfluenceReportToString(const ConfluenceReport& report,
                                     const RuleCatalog& catalog);

std::string PartialConfluenceReportToString(
    const PartialConfluenceReport& report, const RuleCatalog& catalog);

std::string ObservableReportToString(const ObservableDeterminismReport& report,
                                     const RuleCatalog& catalog);

std::string FullReportToString(const FullReport& report,
                               const RuleCatalog& catalog);

}  // namespace starburst

#endif  // STARBURST_ANALYSIS_REPORT_H_
