#ifndef STARBURST_ANALYSIS_RULE_INDEX_H_
#define STARBURST_ANALYSIS_RULE_INDEX_H_

#include <unordered_map>
#include <vector>

#include "analysis/ops.h"
#include "catalog/catalog.h"

namespace starburst {

/// Dense index of a rule within the analyzed rule set R (mirrors
/// prelim.h's alias; kept here so the index header stands alone).
using RuleIndex = int;

struct RulePrelim;

/// Inverted table -> rules index over the Section 3 per-rule sets, the
/// backbone of sparse pair analysis on large catalogs.
///
/// A rule's *footprint* is the set of tables its Section 3 sets touch:
/// tables(Triggered-By) ∪ tables(Performs) ∪ tables(Reads). Every Lemma 6.1
/// condition and every Triggers edge between two rules requires the pair to
/// share a footprint table — (I,t)/(D,t) touch every column of t and
/// (U,t.c) touches t.c, so a write that affects a read, an update/update or
/// insert/delete conflict, and a trigger/untrigger edge all name a common
/// table. Pairs with disjoint footprints therefore commute by construction
/// and need neither a pair check nor a cache entry; pair enumeration walks
/// only OverlapCandidates().
///
/// The index is maintained incrementally at rule registration: Append() is
/// O(footprint) and Remove() is O(index size) (bucket reindexing). All
/// bucket vectors are kept sorted ascending.
class RuleFootprintIndex {
 public:
  /// The footprint of one rule's prelim sets: sorted, deduplicated tables.
  static std::vector<TableId> FootprintOf(const RulePrelim& prelim);

  void Clear();

  /// Rebuilds from scratch; rule i of `prelims` gets index i.
  void Build(const std::vector<RulePrelim>& prelims);

  /// Appends the rule as index num_rules(). Buckets stay sorted because the
  /// new index is the maximum.
  void Append(const RulePrelim& prelim);

  /// Removes rule `r`; every index above `r` shifts down by one.
  void Remove(RuleIndex r);

  int num_rules() const { return static_cast<int>(footprints_.size()); }

  /// The rule's footprint tables (sorted ascending).
  const std::vector<TableId>& Footprint(RuleIndex r) const {
    return footprints_[r];
  }

  /// Rules whose footprint contains `t` (sorted ascending; empty vector for
  /// an untouched table).
  const std::vector<RuleIndex>& RulesTouching(TableId t) const;

  /// Rules defined `on t` — the rules whose Triggered-By operations live on
  /// `t` (sorted ascending). These are the only possible targets of a
  /// Triggers edge from a rule performing operations on `t`.
  const std::vector<RuleIndex>& RulesOn(TableId t) const;

  /// Every rule (other than `r`) sharing at least one footprint table with
  /// `r`, sorted ascending and deduplicated. Only these pairs can be
  /// noncommutative under Lemma 6.1.
  std::vector<RuleIndex> OverlapCandidates(RuleIndex r) const;

 private:
  std::vector<std::vector<TableId>> footprints_;  // rule -> sorted tables
  std::vector<TableId> own_table_;                // rule -> its `on` table
  std::unordered_map<TableId, std::vector<RuleIndex>> touching_;
  std::unordered_map<TableId, std::vector<RuleIndex>> on_table_;
  std::vector<RuleIndex> empty_;
};

}  // namespace starburst

#endif  // STARBURST_ANALYSIS_RULE_INDEX_H_
