#ifndef STARBURST_ANALYSIS_OPS_H_
#define STARBURST_ANALYSIS_OPS_H_

#include <compare>
#include <set>
#include <string>

#include "catalog/catalog.h"

namespace starburst {

/// A database modification operation from the set O of Section 3:
/// (I, t) insertions into t, (D, t) deletions from t, (U, t.c) updates to
/// column c of table t.
struct Operation {
  enum class Kind { kInsert, kDelete, kUpdate };
  Kind kind = Kind::kInsert;
  TableId table = kInvalidTableId;
  ColumnId column = kInvalidColumnId;  // valid only for kUpdate

  static Operation Insert(TableId t) {
    return Operation{Kind::kInsert, t, kInvalidColumnId};
  }
  static Operation Delete(TableId t) {
    return Operation{Kind::kDelete, t, kInvalidColumnId};
  }
  static Operation Update(TableId t, ColumnId c) {
    return Operation{Kind::kUpdate, t, c};
  }

  auto operator<=>(const Operation&) const = default;

  /// "(I, t)" / "(D, t)" / "(U, t.c)" with names from `schema`.
  std::string ToString(const Schema& schema) const;
};

/// A set of operations, ordered for deterministic iteration.
using OperationSet = std::set<Operation>;

/// A column of a specific table (member of the set C of Section 3).
struct TableColumn {
  TableId table = kInvalidTableId;
  ColumnId column = kInvalidColumnId;

  auto operator<=>(const TableColumn&) const = default;

  std::string ToString(const Schema& schema) const;
};

using TableColumnSet = std::set<TableColumn>;

/// True when the sets share at least one element.
bool Intersects(const OperationSet& a, const OperationSet& b);

/// True when some operation in `ops` writes a column read in `reads`:
/// (I,t)/(D,t) touch every column of t; (U,t.c) touches t.c.
bool WritesAnyOf(const OperationSet& ops, const TableColumnSet& reads);

/// Renders "{(I, t), (U, t.c)}".
std::string OperationSetToString(const OperationSet& ops,
                                 const Schema& schema);

}  // namespace starburst

#endif  // STARBURST_ANALYSIS_OPS_H_
