#ifndef STARBURST_ANALYSIS_AUTO_DISCHARGE_H_
#define STARBURST_ANALYSIS_AUTO_DISCHARGE_H_

#include <vector>

#include "analysis/termination.h"
#include "catalog/catalog.h"
#include "rulelang/ast.h"

namespace starburst {

/// Automatic detection of the two Section 5 special cases in which a
/// triggering-graph cycle is harmless — the paper lists them as examples
/// the user would verify by hand and notes "some such cases may be
/// detected automatically":
///
///   1. **Delete-only rules**: "the action of some rule r on the cycle
///      only deletes from a table t, and no other rules on the cycle
///      insert into t. Eventually r's action has no effect." We also
///      require that r itself performs no inserts anywhere on those
///      tables; updates by other cycle rules are fine (they never add
///      rows, so r can only delete finitely often).
///
///   2. **Bounded monotonic updates**: every statement of r's action is an
///      UPDATE whose assignments all have the shape `c = c + k` (integer
///      literal k >= 1) guarded by a simple WHERE that bounds c from above
///      (`c < B` / `c <= B` / `c = B`). Each matched row's c strictly
///      increases and is capped, so r's action eventually has no effect —
///      provided no other rule on the cycle can refuel it by decreasing c
///      (updating the same column) or inserting fresh rows into the table.
///
/// Both checks are conservative: any doubt (non-literal increments,
/// complex WHEREs, inserts on the cycle) leaves the rule uncertified.
class AutoDischargeDetector {
 public:
  AutoDischargeDetector(const Schema& schema,
                        const std::vector<RuleDef>& rules,
                        const PrelimAnalysis& prelim)
      : schema_(schema), rules_(rules), prelim_(prelim) {}

  /// Quiescence certifications for rules on cyclic components that match
  /// one of the two patterns. Feed the result into TerminationAnalyzer
  /// (or merge via Analyzer::ApplyAutoDischarge).
  TerminationCertifications Detect() const;

  /// Pattern 1, relative to the rules of `component` (exposed for tests).
  bool IsDeleteOnlyQuiescent(RuleIndex r,
                             const std::vector<RuleIndex>& component) const;

  /// Pattern 2, relative to the rules of `component` (exposed for tests).
  bool IsBoundedIncrementQuiescent(
      RuleIndex r, const std::vector<RuleIndex>& component) const;

 private:
  const Schema& schema_;
  const std::vector<RuleDef>& rules_;
  const PrelimAnalysis& prelim_;
};

}  // namespace starburst

#endif  // STARBURST_ANALYSIS_AUTO_DISCHARGE_H_
