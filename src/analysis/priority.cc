#include "analysis/priority.h"

#include <utility>

namespace starburst {

Status PriorityOrder::CloseAndCheck(const PrelimAnalysis* prelim) {
  // On entry below_ holds the direct i > j edges; on exit it is the sorted
  // transitive closure. Per-source DFS with a stamp array: O(sources with
  // edges · reachable edges), so a catalog with few priority clauses pays
  // nearly nothing regardless of n.
  std::vector<std::vector<RuleIndex>> direct = std::move(below_);
  below_.assign(n_, {});
  above_.assign(n_, {});
  ordered_pairs_ = 0;
  std::vector<int> stamp(n_, -1);
  std::vector<RuleIndex> stack;
  for (RuleIndex i = 0; i < n_; ++i) {
    if (direct[i].empty()) continue;
    std::vector<RuleIndex>& reach = below_[i];
    stack.assign(direct[i].begin(), direct[i].end());
    for (RuleIndex w : stack) stamp[w] = i;
    while (!stack.empty()) {
      RuleIndex v = stack.back();
      stack.pop_back();
      reach.push_back(v);
      for (RuleIndex w : direct[v]) {
        if (stamp[w] != i) {
          stamp[w] = i;
          stack.push_back(w);
        }
      }
    }
    std::sort(reach.begin(), reach.end());
    reach.erase(std::unique(reach.begin(), reach.end()), reach.end());
    if (std::binary_search(reach.begin(), reach.end(), i)) {
      // Report the first (ascending) rule on a cycle, matching the old
      // dense closure's diagonal scan.
      std::string who =
          prelim != nullptr ? prelim->rule(i).name : std::to_string(i);
      return Status::SemanticError(
          "priority ordering is cyclic (rule '" + who +
          "' transitively precedes itself); precedes/follows must define a "
          "partial order");
    }
  }
  for (RuleIndex i = 0; i < n_; ++i) {
    ordered_pairs_ += static_cast<long>(below_[i].size());
    // Transpose: i ascending keeps each above_ row sorted.
    for (RuleIndex j : below_[i]) above_[j].push_back(i);
  }
  return Status::OK();
}

Result<PriorityOrder> PriorityOrder::Build(
    const PrelimAnalysis& prelim, const std::vector<RuleDef>& rules,
    const std::vector<std::pair<RuleIndex, RuleIndex>>& extra) {
  int n = prelim.num_rules();
  PriorityOrder order;
  order.n_ = n;
  order.below_.assign(n, {});

  for (size_t i = 0; i < rules.size(); ++i) {
    const RuleDef& rule = rules[i];
    for (const std::string& other : rule.precedes) {
      RuleIndex j = prelim.FindRule(other);
      if (j < 0) {
        return Status::SemanticError("rule '" + rule.name +
                                     "' precedes unknown rule '" + other + "'");
      }
      order.below_[i].push_back(j);
    }
    for (const std::string& other : rule.follows) {
      RuleIndex j = prelim.FindRule(other);
      if (j < 0) {
        return Status::SemanticError("rule '" + rule.name +
                                     "' follows unknown rule '" + other + "'");
      }
      order.below_[j].push_back(static_cast<RuleIndex>(i));
    }
  }
  for (const auto& [hi, lo] : extra) {
    if (hi < 0 || hi >= n || lo < 0 || lo >= n) {
      return Status::InvalidArgument("priority edge index out of range");
    }
    order.below_[hi].push_back(lo);
  }
  STARBURST_RETURN_IF_ERROR(order.CloseAndCheck(&prelim));
  return order;
}

Result<PriorityOrder> PriorityOrder::FromEdges(
    int num_rules, const std::vector<std::pair<RuleIndex, RuleIndex>>& edges) {
  PriorityOrder order;
  order.n_ = num_rules;
  order.below_.assign(num_rules, {});
  for (const auto& [hi, lo] : edges) {
    if (hi < 0 || hi >= num_rules || lo < 0 || lo >= num_rules) {
      return Status::InvalidArgument("priority edge index out of range");
    }
    order.below_[hi].push_back(lo);
  }
  STARBURST_RETURN_IF_ERROR(order.CloseAndCheck(nullptr));
  return order;
}

std::vector<RuleIndex> PriorityOrder::Choose(
    const std::vector<RuleIndex>& triggered) const {
  std::vector<RuleIndex> eligible;
  for (RuleIndex i : triggered) {
    bool dominated = false;
    for (RuleIndex j : triggered) {
      if (j != i && Higher(j, i)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) eligible.push_back(i);
  }
  return eligible;
}

}  // namespace starburst
