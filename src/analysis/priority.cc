#include "analysis/priority.h"

namespace starburst {

namespace {

/// Transitive closure + strictness check. `higher[i][j]` holds direct
/// edges i > j on entry; on exit it is the closure. Returns SemanticError
/// when the relation is cyclic.
Status CloseAndCheck(std::vector<std::vector<bool>>& higher,
                     const std::vector<std::string>* names) {
  int n = static_cast<int>(higher.size());
  // Floyd-Warshall style closure.
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      if (!higher[i][k]) continue;
      for (int j = 0; j < n; ++j) {
        if (higher[k][j]) higher[i][j] = true;
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    if (higher[i][i]) {
      std::string who = names != nullptr ? (*names)[i] : std::to_string(i);
      return Status::SemanticError(
          "priority ordering is cyclic (rule '" + who +
          "' transitively precedes itself); precedes/follows must define a "
          "partial order");
    }
  }
  return Status::OK();
}

}  // namespace

Result<PriorityOrder> PriorityOrder::Build(
    const PrelimAnalysis& prelim, const std::vector<RuleDef>& rules,
    const std::vector<std::pair<RuleIndex, RuleIndex>>& extra) {
  int n = prelim.num_rules();
  PriorityOrder order;
  order.higher_.assign(n, std::vector<bool>(n, false));
  std::vector<std::string> names(n);
  for (int i = 0; i < n; ++i) names[i] = prelim.rule(i).name;

  for (size_t i = 0; i < rules.size(); ++i) {
    const RuleDef& rule = rules[i];
    for (const std::string& other : rule.precedes) {
      RuleIndex j = prelim.FindRule(other);
      if (j < 0) {
        return Status::SemanticError("rule '" + rule.name +
                                     "' precedes unknown rule '" + other + "'");
      }
      order.higher_[i][j] = true;
    }
    for (const std::string& other : rule.follows) {
      RuleIndex j = prelim.FindRule(other);
      if (j < 0) {
        return Status::SemanticError("rule '" + rule.name +
                                     "' follows unknown rule '" + other + "'");
      }
      order.higher_[j][i] = true;
    }
  }
  for (const auto& [hi, lo] : extra) {
    if (hi < 0 || hi >= n || lo < 0 || lo >= n) {
      return Status::InvalidArgument("priority edge index out of range");
    }
    order.higher_[hi][lo] = true;
  }
  STARBURST_RETURN_IF_ERROR(CloseAndCheck(order.higher_, &names));
  return order;
}

Result<PriorityOrder> PriorityOrder::FromEdges(
    int num_rules, const std::vector<std::pair<RuleIndex, RuleIndex>>& edges) {
  PriorityOrder order;
  order.higher_.assign(num_rules, std::vector<bool>(num_rules, false));
  for (const auto& [hi, lo] : edges) {
    if (hi < 0 || hi >= num_rules || lo < 0 || lo >= num_rules) {
      return Status::InvalidArgument("priority edge index out of range");
    }
    order.higher_[hi][lo] = true;
  }
  STARBURST_RETURN_IF_ERROR(CloseAndCheck(order.higher_, nullptr));
  return order;
}

std::vector<RuleIndex> PriorityOrder::Choose(
    const std::vector<RuleIndex>& triggered) const {
  std::vector<RuleIndex> eligible;
  for (RuleIndex i : triggered) {
    bool dominated = false;
    for (RuleIndex j : triggered) {
      if (j != i && higher_[j][i]) {
        dominated = true;
        break;
      }
    }
    if (!dominated) eligible.push_back(i);
  }
  return eligible;
}

int PriorityOrder::num_ordered_pairs() const {
  int count = 0;
  for (const auto& row : higher_) {
    for (bool b : row) {
      if (b) ++count;
    }
  }
  return count;
}

}  // namespace starburst
