#ifndef STARBURST_ANALYSIS_COMMUTATIVITY_H_
#define STARBURST_ANALYSIS_COMMUTATIVITY_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/prelim.h"
#include "catalog/catalog.h"

namespace starburst {

/// User declarations that pairs of rules which *appear* noncommutative by
/// Lemma 6.1 actually do commute (Section 6.1's interactive refinement,
/// e.g. "ri inserts into t and rj deletes from t, but the inserted tuples
/// never satisfy the delete condition").
class CommutativityCertifications {
 public:
  /// Declares that `a` and `b` commute (order-insensitive).
  void Certify(const std::string& a, const std::string& b);

  bool Contains(const std::string& a, const std::string& b) const;

  size_t size() const { return pairs_.size(); }

  /// The certified pairs, normalized (lowercased, lexicographic order).
  const std::set<std::pair<std::string, std::string>>& pairs() const {
    return pairs_;
  }

  /// Adds every pair of `other`.
  void Merge(const CommutativityCertifications& other);

 private:
  std::set<std::pair<std::string, std::string>> pairs_;  // normalized
};

/// One violated condition of Lemma 6.1 explaining why a pair may be
/// noncommutative. `condition` is the 1-based condition number from the
/// paper; `actor`/`affected` give the direction (condition 6 is reported
/// as conditions 1-5 with the roles swapped).
struct NoncommutativityCause {
  int condition = 0;
  RuleIndex actor = -1;
  RuleIndex affected = -1;

  /// Human-readable description, e.g.
  /// "r1 can trigger r2 (Lemma 6.1 condition 1)".
  std::string Describe(const PrelimAnalysis& prelim,
                       const Schema& schema) const;
};

/// Pairwise rule commutativity per Lemma 6.1, with user certifications.
///
/// Two distinct rules are commutative unless one of conditions 1-5 holds
/// in either direction:
///   1. rj ∈ Triggers(ri)
///   2. rj ∈ Can-Untrigger(Performs(ri))
///   3. ri performs an operation on a column rj reads
///   4. ri inserts into a table rj deletes from or updates
///   5. ri and rj update the same column
/// Every rule commutes with itself.
class CommutativityAnalyzer {
 public:
  CommutativityAnalyzer(const PrelimAnalysis& prelim, const Schema& schema,
                        CommutativityCertifications certifications = {});

  /// Constructs from a precomputed syntactic matrix (used by incremental
  /// analysis to reuse cached pair verdicts). The matrix must be symmetric
  /// with a true diagonal and agree with Lemma 6.1 over `prelim`.
  CommutativityAnalyzer(const PrelimAnalysis& prelim, const Schema& schema,
                        CommutativityCertifications certifications,
                        std::vector<std::vector<bool>> syntactic_matrix);

  /// Stateless pairwise Lemma 6.1 check (no certifications): true when the
  /// pair is syntactically guaranteed to commute.
  static bool SyntacticallyCommutePair(const PrelimAnalysis& prelim,
                                       RuleIndex i, RuleIndex j);

  /// Stateless variant of Explain(): all Lemma 6.1 causes in both
  /// directions for a pair.
  static std::vector<NoncommutativityCause> ExplainPair(
      const PrelimAnalysis& prelim, RuleIndex i, RuleIndex j);

  /// True when ri and rj are (conservatively) guaranteed to commute.
  bool Commute(RuleIndex i, RuleIndex j) const { return commute_[i][j]; }

  /// The Lemma 6.1 conditions that make the pair appear noncommutative
  /// (empty when they commute syntactically). Certifications do not change
  /// this — they override the verdict, not the explanation.
  std::vector<NoncommutativityCause> Explain(RuleIndex i, RuleIndex j) const;

  /// True when the pair was certified by the user rather than proven by
  /// Lemma 6.1.
  bool CertifiedOnly(RuleIndex i, RuleIndex j) const;

  const PrelimAnalysis& prelim() const { return prelim_; }
  const Schema& schema() const { return schema_; }

 private:
  /// Conditions 1-5 with ri as actor (no direction swap).
  static std::vector<NoncommutativityCause> Directed(
      const PrelimAnalysis& prelim, RuleIndex ri, RuleIndex rj);

  /// Fills commute_ from syntactically_commute_ plus certifications.
  void ApplyCertifications();

  const PrelimAnalysis& prelim_;
  const Schema& schema_;
  CommutativityCertifications certifications_;
  std::vector<std::vector<bool>> commute_;
  std::vector<std::vector<bool>> syntactically_commute_;
};

}  // namespace starburst

#endif  // STARBURST_ANALYSIS_COMMUTATIVITY_H_
