#include "analysis/suggest.h"

#include <algorithm>
#include <set>

namespace starburst {

std::string Suggestion::Describe(const PrelimAnalysis& prelim) const {
  const std::string& a = prelim.rule(rule_a).name;
  const std::string& b = prelim.rule(rule_b).name;
  switch (kind) {
    case Kind::kCertifyCommute:
      return "certify that '" + a + "' and '" + b + "' commute";
    case Kind::kAddPriority:
      return "add a priority ordering between '" + a + "' and '" + b + "'";
  }
  return "";
}

std::vector<Suggestion> SuggestForConfluence(const ConfluenceReport& report) {
  std::vector<Suggestion> suggestions;
  std::set<std::pair<RuleIndex, RuleIndex>> seen_certify, seen_order;
  for (const ConfluenceViolation& v : report.violations) {
    if (v.r1 != v.r2) {
      auto key = std::minmax(v.r1, v.r2);
      if (seen_certify.insert(key).second) {
        suggestions.push_back(
            {Suggestion::Kind::kCertifyCommute, key.first, key.second});
      }
    }
    auto pair_key = std::minmax(v.pair_i, v.pair_j);
    if (seen_order.insert(pair_key).second) {
      suggestions.push_back(
          {Suggestion::Kind::kAddPriority, pair_key.first, pair_key.second});
    }
  }
  return suggestions;
}

std::vector<std::string> CorollaryLints(
    const CommutativityAnalyzer& commutativity,
    const PriorityOrder& priority) {
  std::vector<std::string> warnings;
  const PrelimAnalysis& prelim = commutativity.prelim();
  int n = prelim.num_rules();
  bool no_priorities = priority.num_ordered_pairs() == 0;
  for (RuleIndex i = 0; i < n; ++i) {
    for (RuleIndex j = i + 1; j < n; ++j) {
      if (!priority.Unordered(i, j)) continue;
      const std::string& a = prelim.rule(i).name;
      const std::string& b = prelim.rule(j).name;
      if (prelim.TriggersRule(i, j) || prelim.TriggersRule(j, i)) {
        warnings.push_back(
            "'" + a + "' and '" + b +
            "' are unordered but one may trigger the other; confluence "
            "cannot be established without an ordering (Corollary 6.10)");
      } else if (no_priorities && !commutativity.Commute(i, j)) {
        warnings.push_back(
            "'" + a + "' and '" + b +
            "' do not commute and the rule set has no priorities; "
            "confluence requires all pairs to commute (Corollary 6.9)");
      }
    }
  }
  return warnings;
}

RepairResult RepairByOrdering(const CommutativityAnalyzer& commutativity,
                              const PriorityOrder& initial_priority,
                              bool termination_guaranteed,
                              int max_iterations) {
  RepairResult result;
  int n = commutativity.prelim().num_rules();
  // Rebuild the priority order from scratch each round: existing edges are
  // not exposed, so we track the full edge set ourselves.
  std::vector<std::pair<RuleIndex, RuleIndex>> edges;
  for (RuleIndex i = 0; i < n; ++i) {
    for (RuleIndex j = 0; j < n; ++j) {
      if (i != j && initial_priority.Higher(i, j)) edges.emplace_back(i, j);
    }
  }
  PriorityOrder priority = initial_priority;
  while (result.iterations < max_iterations) {
    ++result.iterations;
    ConfluenceAnalyzer analyzer(commutativity, priority);
    ConfluenceReport report =
        analyzer.Analyze(termination_guaranteed, /*max_violations=*/1);
    if (report.requirement_holds) {
      result.final_report = std::move(report);
      result.succeeded = true;
      return result;
    }
    if (report.violations.empty()) {
      // Requirement failed but no violation recorded; cannot make progress.
      result.final_report = std::move(report);
      return result;
    }
    const ConfluenceViolation& v = report.violations.front();
    auto [hi, lo] = std::minmax(v.pair_i, v.pair_j);
    edges.emplace_back(hi, lo);
    auto rebuilt = PriorityOrder::FromEdges(n, edges);
    if (!rebuilt.ok()) {
      // The new edge closed a priority cycle; undo and stop.
      edges.pop_back();
      result.final_report = std::move(report);
      return result;
    }
    priority = std::move(rebuilt).value();
    result.added_orderings.emplace_back(hi, lo);
  }
  ConfluenceAnalyzer analyzer(commutativity, priority);
  result.final_report = analyzer.Analyze(termination_guaranteed, 1);
  result.succeeded = result.final_report.requirement_holds;
  return result;
}

}  // namespace starburst
