#include "analysis/observable.h"

namespace starburst {

ObservableDeterminismReport ObservableDeterminismAnalyzer::Analyze(
    const Schema& schema, const PrelimAnalysis& prelim,
    const PriorityOrder& priority,
    const CommutativityCertifications& certifications,
    bool whole_set_termination,
    const TerminationCertifications& termination_certs, int max_violations) {
  ObservableDeterminismReport report;
  report.whole_set_termination = whole_set_termination;
  for (RuleIndex r = 0; r < prelim.num_rules(); ++r) {
    if (prelim.rule(r).observable) report.observable_rules.push_back(r);
  }

  // Extended definitions of Section 8: Obs is a pseudo table outside the
  // schema; observable rules perform (I, Obs) and read Obs.c.
  TableId obs_table = schema.num_tables();
  PrelimAnalysis extended = prelim.ExtendWithObservableTable(obs_table);
  CommutativityAnalyzer extended_commutativity(extended, schema,
                                               certifications);
  PartialConfluenceAnalyzer partial(extended_commutativity, priority);
  report.obs_confluence =
      partial.Analyze({obs_table}, termination_certs, max_violations);

  // Theorem 8.1: Confluence Requirement for Sig(Obs) + termination of R.
  // (We keep the Sig-subset termination verdict in obs_confluence for
  // diagnostics but gate determinism on whole-set termination, matching
  // the theorem statement.)
  report.deterministic = report.obs_confluence.confluence.requirement_holds &&
                         whole_set_termination;

  // Corollary 8.2 lint.
  for (size_t a = 0; a < report.observable_rules.size(); ++a) {
    for (size_t b = a + 1; b < report.observable_rules.size(); ++b) {
      RuleIndex i = report.observable_rules[a];
      RuleIndex j = report.observable_rules[b];
      if (priority.Unordered(i, j)) {
        report.unordered_observable_pairs.emplace_back(i, j);
      }
    }
  }
  return report;
}

}  // namespace starburst
