#ifndef STARBURST_ANALYSIS_REFINE_H_
#define STARBURST_ANALYSIS_REFINE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "analysis/commutativity.h"
#include "catalog/catalog.h"
#include "rulelang/ast.h"

namespace starburst {

/// A closed integer interval [lo, hi] used by the refinement's abstract
/// domain; unbounded sides use the int64 limits.
struct Interval {
  int64_t lo;
  int64_t hi;

  static Interval All();
  static Interval AtMost(int64_t v);
  static Interval AtLeast(int64_t v);
  static Interval Exactly(int64_t v);

  bool empty() const { return lo > hi; }
  bool Contains(int64_t v) const { return v >= lo && v <= hi; }
  Interval Intersect(const Interval& other) const;
};

/// Per-column interval constraints extracted from a WHERE predicate that is
/// a pure conjunction of `column <op> integer-literal` comparisons on the
/// statement's target table. `simple` is false when the predicate contains
/// anything else (subqueries, OR, arithmetic, other tables, non-integer
/// literals, ...), in which case no refinement conclusion may be drawn.
struct ColumnConstraints {
  bool simple = false;
  /// Missing columns are unconstrained. An empty interval means the WHERE
  /// is unsatisfiable.
  std::map<ColumnId, Interval> intervals;
};

/// Automatic detection of the two Section 6.1 special cases in which rules
/// that appear noncommutative by Lemma 6.1 actually commute:
///
///   1. "ri inserts into a table t and rj deletes from t, but the tuples
///      inserted by ri never satisfy the delete condition of rj", and
///   2. "ri and rj update the same table but never the same tuples".
///
/// The paper leaves these to the user ("for now we assume that they are
/// specified by the user during the interactive analysis process"); this
/// module implements the automatic detection the paper anticipates, via a
/// conservative interval analysis: a pair is certified only when *every*
/// Lemma 6.1 cause against it is refuted.
///
/// Soundness notes encoded in the checks:
///  * Disjoint-update refinement additionally requires that neither rule's
///    SET columns appear in the other's WHERE (otherwise one rule could
///    move rows into the other's range) — and that the updated columns do
///    not overlap the other rule's WHERE columns for the same reason.
///  * Insert-vs-write refinement requires every inserted row to *definitely*
///    fail the other statement's WHERE (some constrained column has a known
///    literal value outside the allowed interval).
///  * The read/write cause (Lemma 6.1 condition 3) raised by an insert
///    against the other rule's WHERE columns is refuted only when the
///    reading rule provably reads the table *nowhere else*: not in its
///    condition, not via transition tables, not in subqueries — only in
///    the simple WHEREs already shown to never match (checked by a
///    conservative read walker; any doubt keeps the pair noncommutative).
class PredicateRefiner {
 public:
  /// `rules` and `prelim` must describe the same rule set and outlive the
  /// refiner.
  PredicateRefiner(const Schema& schema, const std::vector<RuleDef>& rules,
                   const PrelimAnalysis& prelim)
      : schema_(schema), rules_(rules), prelim_(prelim) {}

  /// Certifications for every pair provable commutative by refinement.
  /// Pass them to CommutativityAnalyzer / Analyzer as if user-supplied.
  CommutativityCertifications Refine() const;

  /// True when the refinement can prove the (unordered) pair commutes even
  /// though Lemma 6.1 flags it.
  bool PairCommutes(RuleIndex i, RuleIndex j) const;

  /// Extracts interval constraints from `where` for statements targeting
  /// `table`. `binding` is the name the target row is visible under
  /// (usually the table name). Exposed for tests.
  static ColumnConstraints ExtractConstraints(const Schema& schema,
                                              TableId table,
                                              const std::string& binding,
                                              const Expr* where);

  /// True when tuple values known from `row_exprs` (an INSERT VALUES row)
  /// definitely violate `constraints`. Exposed for tests.
  static bool RowDefinitelyFails(const Schema& schema, TableId table,
                                 const std::vector<ColumnId>& columns,
                                 const std::vector<ExprPtr>& row_exprs,
                                 const ColumnConstraints& constraints);

 private:
  /// Refutes one directed Lemma 6.1 cause; false = cannot refute.
  bool RefuteCause(const NoncommutativityCause& cause, RuleIndex i,
                   RuleIndex j) const;

  /// Case 1 on one table: every INSERT VALUES row of `inserter` into `t`
  /// definitely fails the WHERE of every DELETE/UPDATE of `writer` on `t`
  /// (vacuously true when `writer` has no such statement).
  bool InsertsNeverMatchOnTable(const RuleDef& inserter, const RuleDef& writer,
                                TableId t) const;

  /// Condition-4 refutation across every table the pair conflicts on.
  bool RefuteInsertWriteConflict(RuleIndex actor, RuleIndex affected) const;

  /// Condition-3 refutation: the actor's only writes to contested tables
  /// are never-matching INSERT VALUES, and the affected rule reads those
  /// tables only through its simple target WHEREs.
  bool RefuteWriteReadConflict(RuleIndex actor, RuleIndex affected) const;

  /// Case 2: all same-table update pairs of the two rules touch provably
  /// disjoint tuples.
  bool UpdatesDisjoint(const RuleDef& a, const RuleDef& b) const;

  const Schema& schema_;
  const std::vector<RuleDef>& rules_;
  const PrelimAnalysis& prelim_;
};

}  // namespace starburst

#endif  // STARBURST_ANALYSIS_REFINE_H_
