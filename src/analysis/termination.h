#ifndef STARBURST_ANALYSIS_TERMINATION_H_
#define STARBURST_ANALYSIS_TERMINATION_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/prelim.h"
#include "analysis/triggering_graph.h"

namespace starburst {

/// User certifications supplied during the interactive analysis process
/// (Section 5): the user asserts that repeated consideration of the rules
/// on a cycle guarantees that a specific rule's condition eventually
/// becomes false or its action eventually has no effect. A cycle is
/// discharged when removing its certified rules breaks every cycle through
/// the component.
struct TerminationCertifications {
  /// Rule names the user has certified as "eventually quiescent".
  std::set<std::string> quiescent_rules;
};

/// One cyclic strong component of the triggering graph, with its verdict.
struct CycleReport {
  /// Rules of the strong component (ascending indices).
  std::vector<RuleIndex> rules;
  /// The certified rules that participate in this component.
  std::vector<RuleIndex> certified;
  /// True when the component minus its certified rules is acyclic, i.e.
  /// every cycle passes through a certified rule.
  bool discharged = false;
};

/// The termination analysis result (Theorem 5.1 plus the interactive
/// discharge process).
struct TerminationReport {
  /// True when every cyclic component is discharged (in particular when
  /// TG_R is acyclic): rule processing is guaranteed to terminate.
  bool guaranteed = false;
  /// True when TG_R had no cycles at all (Theorem 5.1 applies directly,
  /// with no user certification needed).
  bool acyclic = false;
  std::vector<CycleReport> cycles;
};

/// Cross-Analyze() memo of per-component discharge verdicts, keyed by the
/// member rules' (name, version) pairs plus the certified names. A cyclic
/// component whose rules and certifications are unchanged since the last
/// analysis reuses its AcyclicWithout verdict — after a single-rule edit,
/// only components containing the edited rule (the dirty SCCs) recompute.
/// The owner (IncrementalAnalyzer) bumps `rule_versions` on every
/// add/remove so redefinitions never reuse a stale verdict.
struct TerminationComponentCache {
  /// Monotonic per-rule versions (lowercased name -> version).
  std::map<std::string, uint64_t> rule_versions;
  /// Component key -> discharge verdict.
  std::map<std::string, bool> discharged;
  long hits = 0;
  long misses = 0;
};

/// Termination analysis (Section 5): builds TG_R, finds cyclic strong
/// components, and checks which are discharged by user certifications.
class TerminationAnalyzer {
 public:
  /// Analyzes all rules. With a non-null `cache`, per-component discharge
  /// verdicts are memoized across calls (see TerminationComponentCache).
  static TerminationReport Analyze(const PrelimAnalysis& prelim,
                                   const TerminationCertifications& certs = {},
                                   TerminationComponentCache* cache = nullptr);

  /// Analyzes the subset `members` (used by partial confluence, which
  /// needs termination of Sig(T') processed on its own — Section 7).
  static TerminationReport AnalyzeSubset(
      const PrelimAnalysis& prelim, const std::vector<RuleIndex>& members,
      const TerminationCertifications& certs = {});
};

}  // namespace starburst

#endif  // STARBURST_ANALYSIS_TERMINATION_H_
