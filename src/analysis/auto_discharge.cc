#include "analysis/auto_discharge.h"

#include "analysis/refine.h"
#include "analysis/triggering_graph.h"
#include "common/metrics.h"
#include "common/strings.h"

namespace starburst {

namespace {

/// Matches `c = c + k` (or `c = k + c`) with an integer literal k >= 1;
/// the column reference must be unqualified or qualified by `binding`.
bool IsPositiveIncrement(const Assignment& assignment,
                         const std::string& binding) {
  const Expr& e = *assignment.value;
  if (e.kind != ExprKind::kBinary || e.binary_op != BinaryOp::kAdd) {
    return false;
  }
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  if (e.left->kind == ExprKind::kColumnRef) {
    col = e.left.get();
    lit = e.right.get();
  } else if (e.right->kind == ExprKind::kColumnRef) {
    col = e.right.get();
    lit = e.left.get();
  } else {
    return false;
  }
  if (!EqualsIgnoreCase(col->column, assignment.column)) return false;
  if (!col->qualifier.empty() &&
      !EqualsIgnoreCase(col->qualifier, binding)) {
    return false;
  }
  return lit->kind == ExprKind::kLiteral &&
         lit->literal.kind == LiteralValue::Kind::kInt &&
         lit->literal.int_value >= 1;
}

}  // namespace

bool AutoDischargeDetector::IsDeleteOnlyQuiescent(
    RuleIndex r, const std::vector<RuleIndex>& component) const {
  const RuleDef& rule = rules_[r];
  if (rule.actions.empty()) return false;
  for (const StmtPtr& stmt : rule.actions) {
    if (stmt->kind != StmtKind::kDelete) return false;
  }
  // No other rule on the component may insert into any deleted table.
  for (const Operation& op : prelim_.rule(r).performs) {
    if (op.kind != Operation::Kind::kDelete) continue;
    for (RuleIndex other : component) {
      if (other == r) continue;
      if (prelim_.rule(other).performs.count(Operation::Insert(op.table)) >
          0) {
        return false;
      }
    }
  }
  return true;
}

bool AutoDischargeDetector::IsBoundedIncrementQuiescent(
    RuleIndex r, const std::vector<RuleIndex>& component) const {
  const RuleDef& rule = rules_[r];
  if (rule.actions.empty()) return false;
  for (const StmtPtr& stmt : rule.actions) {
    if (stmt->kind != StmtKind::kUpdate) return false;
    TableId t = schema_.FindTable(stmt->table);
    if (t == kInvalidTableId) return false;
    // Only integer columns have the discrete strictly-increasing argument.
    ColumnConstraints constraints = PredicateRefiner::ExtractConstraints(
        schema_, t, stmt->table, stmt->where.get());
    if (!constraints.simple) return false;
    for (const Assignment& assignment : stmt->assignments) {
      if (!IsPositiveIncrement(assignment, stmt->table)) return false;
      ColumnId c = schema_.table(t).FindColumn(assignment.column);
      if (c == kInvalidColumnId) return false;
      if (schema_.table(t).column(c).type != ColumnType::kInt) return false;
      auto it = constraints.intervals.find(c);
      if (it == constraints.intervals.end()) return false;
      if (it->second.hi == Interval::All().hi) return false;  // unbounded
      // No other component rule may refuel the increment: decreasing /
      // rewriting the column, or inserting fresh rows into the table.
      for (RuleIndex other : component) {
        if (other == r) continue;
        const RulePrelim& op = prelim_.rule(other);
        if (op.performs.count(Operation::Update(t, c)) > 0 ||
            op.performs.count(Operation::Insert(t)) > 0) {
          return false;
        }
      }
    }
  }
  return true;
}

TerminationCertifications AutoDischargeDetector::Detect() const {
  TerminationCertifications certs;
  TriggeringGraph graph(prelim_);
  for (const auto& component : graph.CyclicComponents()) {
    for (RuleIndex r : component) {
      // Per-theorem discharge counts: delete-only is tried first, matching
      // the original short-circuit order.
      if (IsDeleteOnlyQuiescent(r, component)) {
        STARBURST_METRIC_COUNT("analysis.discharge.delete_only", 1);
        certs.quiescent_rules.insert(prelim_.rule(r).name);
      } else if (IsBoundedIncrementQuiescent(r, component)) {
        STARBURST_METRIC_COUNT("analysis.discharge.bounded_increment", 1);
        certs.quiescent_rules.insert(prelim_.rule(r).name);
      }
    }
  }
  return certs;
}

}  // namespace starburst
