#ifndef STARBURST_ANALYSIS_INCREMENTAL_H_
#define STARBURST_ANALYSIS_INCREMENTAL_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis/commutativity.h"
#include "analysis/confluence.h"
#include "analysis/termination.h"
#include "common/status.h"
#include "rulelang/ast.h"

namespace starburst {

/// Statistics showing how much work an incremental re-analysis reused.
struct IncrementalStats {
  long pair_checks_computed = 0;
  long pair_checks_reused = 0;
};

/// Incremental analysis across rule-set edits (Section 9, future work,
/// implemented here). The key observation is that Lemma 6.1 commutativity
/// is a property of a *pair* of rules and the schema only, so pair
/// verdicts cached by rule name stay valid until one of the two rules is
/// redefined or removed. Adding or removing one rule therefore costs O(n)
/// new pair checks instead of O(n²).
class IncrementalAnalyzer {
 public:
  /// The schema must outlive the analyzer.
  explicit IncrementalAnalyzer(
      const Schema* schema, CommutativityCertifications certifications = {});

  /// Adds a rule; invalidates nothing (new pairs are simply not cached
  /// yet). Fails on semantic errors, leaving the rule set unchanged.
  Status AddRule(RuleDef rule);

  /// Removes the named rule and drops every cached pair involving it.
  Status RemoveRule(const std::string& name);

  int num_rules() const { return static_cast<int>(rules_.size()); }

  /// Runs termination + confluence over the current rule set, reusing
  /// cached pair verdicts. Returns the reports plus reuse statistics.
  struct RunResult {
    TerminationReport termination;
    ConfluenceReport confluence;
    IncrementalStats stats;
  };
  Result<RunResult> Analyze(const TerminationCertifications& certs = {},
                            int max_violations = -1);

 private:
  const Schema* schema_;
  CommutativityCertifications certifications_;
  std::vector<RuleDef> rules_;
  /// Cache: normalized (name, name) -> rules commute.
  std::map<std::pair<std::string, std::string>, bool> pair_cache_;
};

}  // namespace starburst

#endif  // STARBURST_ANALYSIS_INCREMENTAL_H_
