#ifndef STARBURST_ANALYSIS_INCREMENTAL_H_
#define STARBURST_ANALYSIS_INCREMENTAL_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/commutativity.h"
#include "analysis/confluence.h"
#include "analysis/termination.h"
#include "common/status.h"
#include "rulelang/ast.h"

namespace starburst {

/// Statistics showing how much work an incremental re-analysis reused.
struct IncrementalStats {
  /// Overlapping pairs whose Lemma 6.1 verdict was computed this Analyze()
  /// (pairs involving a rule added since the previous analysis).
  long pair_checks_computed = 0;
  /// Overlapping pairs whose verdict was carried over from earlier
  /// analyses. Non-overlapping pairs commute by construction and are
  /// counted in neither bucket — they cost nothing.
  long pair_checks_reused = 0;
  /// Cyclic triggering-graph components whose discharge verdict was reused
  /// from / recomputed into the termination component cache.
  long termination_components_reused = 0;
  long termination_components_recomputed = 0;
};

/// Incremental analysis across rule-set edits (Section 9, future work,
/// implemented here). Three observations make single-rule edits cheap:
///   - The Section 3 sets of a rule depend only on the rule and the
///     schema, so AddRule() validates just the new rule and appends its
///     prelim state in place — a k-rule catalog costs k single-rule
///     validations, not O(k²) (no catalog clone, no full recompute).
///   - Lemma 6.1 commutativity is a property of a *pair* of rules, and
///     pairs with disjoint table footprints commute by construction
///     (rule_index.h), so the pair state is a per-rule noncommute
///     adjacency over overlapping pairs only, and an edit dirties just the
///     pairs involving the edited rule.
///   - Termination discharge verdicts are per cyclic component, so after
///     an edit only components containing an edited rule (dirty SCCs)
///     recompute (TerminationComponentCache).
///
/// Priority-clause validation at AddRule() covers the new rule's clauses
/// (unknown names, cycles through the new rule over the committed edges).
/// One divergence from full revalidation: a dangling clause left behind by
/// RemoveRule() on some *other* rule no longer fails the next AddRule();
/// it is reported by the next Analyze(), which always resolves every
/// clause.
class IncrementalAnalyzer {
 public:
  /// The schema must outlive the analyzer.
  explicit IncrementalAnalyzer(
      const Schema* schema, CommutativityCertifications certifications = {});

  /// Validates and appends a rule, updating prelim state, the footprint
  /// index, and the Triggers relation incrementally. Fails on semantic
  /// errors, leaving the rule set unchanged.
  Status AddRule(RuleDef rule);

  /// Removes the named rule and drops every cached pair verdict and
  /// termination component involving it.
  Status RemoveRule(const std::string& name);

  int num_rules() const { return static_cast<int>(rules_.size()); }

  /// Single-rule validations performed by AddRule() so far — pinned by
  /// tests to show a k-rule build does O(k) validation work.
  long rule_validations() const { return rule_validations_; }

  /// The rule's name (indices follow registration order, shifted down by
  /// removals — the same indices the reports use).
  const std::string& rule_name(RuleIndex i) const;

  /// True when the pair is (conservatively) guaranteed to commute, with
  /// certifications applied. Reflects the pair state as of the most recent
  /// Analyze(); pairs involving rules added since then are unreliable.
  bool PairCommutes(RuleIndex i, RuleIndex j) const {
    if (i == j) return true;
    const std::vector<RuleIndex>& row = noncommute_[i];
    if (!std::binary_search(row.begin(), row.end(), j)) return true;
    return certifications_.Contains(rule_name(i), rule_name(j));
  }

  /// Runs termination + confluence over the current rule set, reusing
  /// cached pair verdicts. Returns the reports plus reuse statistics.
  struct RunResult {
    TerminationReport termination;
    ConfluenceReport confluence;
    IncrementalStats stats;
  };
  Result<RunResult> Analyze(const TerminationCertifications& certs = {},
                            int max_violations = -1);

 private:
  /// Rebuilds prio_out_ from every committed rule's clauses; dangling
  /// names (possible after RemoveRule) are skipped and keep the edges
  /// marked stale, so a later add of the missing name re-binds them.
  void RebuildPriorityEdges();

  /// Pre-commit cycle check for a new rule with direct lower neighbors
  /// `out_targets` and higher neighbors `in_sources`: the committed edge
  /// graph is acyclic, so any new cycle passes through the new rule.
  Status CheckPriorityAcyclic(const std::vector<RuleIndex>& out_targets,
                              const std::vector<RuleIndex>& in_sources) const;

  const Schema* schema_;
  CommutativityCertifications certifications_;
  std::vector<RuleDef> rules_;
  /// Live prelim state, updated in place by AddRule/RemoveRule.
  PrelimAnalysis prelim_;
  /// noncommute_[i]: sorted rules j that fail the Lemma 6.1 check against
  /// i (certifications not applied). Symmetric; covers analyzed pairs.
  std::vector<std::vector<RuleIndex>> noncommute_;
  /// Rules added since the last Analyze(); their pairs need checking.
  std::vector<char> dirty_;
  /// Structural count of overlapping unordered pairs, maintained ±
  /// |OverlapCandidates| per edit; reused = overlap_pairs_ − computed.
  long overlap_pairs_ = 0;
  long rule_validations_ = 0;
  /// Direct priority edges (hi -> lo) among committed rules.
  std::vector<std::vector<RuleIndex>> prio_out_;
  bool prio_edges_stale_ = false;
  bool have_dangling_ = false;
  /// Per-rule versions + per-component discharge verdicts for dirty-SCC
  /// termination recompute.
  TerminationComponentCache term_cache_;
  uint64_t next_version_ = 1;
};

}  // namespace starburst

#endif  // STARBURST_ANALYSIS_INCREMENTAL_H_
