#include "analysis/restricted.h"

#include <deque>

namespace starburst {

std::vector<RuleIndex> RestrictedOpsAnalyzer::RelevantRules(
    const PrelimAnalysis& prelim, const OperationSet& allowed) {
  int n = prelim.num_rules();
  std::vector<bool> relevant(n, false);
  std::deque<RuleIndex> queue;
  for (RuleIndex r = 0; r < n; ++r) {
    if (Intersects(prelim.rule(r).triggered_by, allowed)) {
      relevant[r] = true;
      queue.push_back(r);
    }
  }
  while (!queue.empty()) {
    RuleIndex r = queue.front();
    queue.pop_front();
    for (RuleIndex next : prelim.Triggers(r)) {
      if (!relevant[next]) {
        relevant[next] = true;
        queue.push_back(next);
      }
    }
  }
  std::vector<RuleIndex> out;
  for (RuleIndex r = 0; r < n; ++r) {
    if (relevant[r]) out.push_back(r);
  }
  return out;
}

RestrictedAnalysisReport RestrictedOpsAnalyzer::Analyze(
    const CommutativityAnalyzer& commutativity, const PriorityOrder& priority,
    const OperationSet& allowed,
    const TerminationCertifications& termination_certs, int max_violations) {
  const PrelimAnalysis& prelim = commutativity.prelim();
  RestrictedAnalysisReport report;
  for (RuleIndex r = 0; r < prelim.num_rules(); ++r) {
    if (Intersects(prelim.rule(r).triggered_by, allowed)) {
      report.initially_triggerable.push_back(r);
    }
  }
  report.relevant = RelevantRules(prelim, allowed);
  report.termination = TerminationAnalyzer::AnalyzeSubset(
      prelim, report.relevant, termination_certs);
  ConfluenceAnalyzer confluence(commutativity, priority);
  report.confluence = confluence.AnalyzeSubset(
      report.relevant, report.termination.guaranteed, max_violations);
  return report;
}

}  // namespace starburst
