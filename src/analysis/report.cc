#include "analysis/report.h"

namespace starburst {

namespace {

std::string RuleName(const RuleCatalog& catalog, RuleIndex r) {
  if (r < 0 || r >= catalog.num_rules()) return "<rule " + std::to_string(r) + ">";
  return catalog.prelim().rule(r).name;
}

std::string RuleList(const RuleCatalog& catalog,
                     const std::vector<RuleIndex>& rules) {
  std::string out = "{";
  for (size_t i = 0; i < rules.size(); ++i) {
    if (i > 0) out += ", ";
    out += RuleName(catalog, rules[i]);
  }
  out += "}";
  return out;
}

}  // namespace

std::string TerminationReportToString(const TerminationReport& report,
                                      const RuleCatalog& catalog) {
  std::string out = "== Termination (Section 5) ==\n";
  if (report.acyclic) {
    out += "Triggering graph is acyclic: termination GUARANTEED "
           "(Theorem 5.1).\n";
    return out;
  }
  out += "Triggering graph has " + std::to_string(report.cycles.size()) +
         " cyclic strong component(s):\n";
  for (const CycleReport& cycle : report.cycles) {
    out += "  component " + RuleList(catalog, cycle.rules);
    if (cycle.discharged) {
      out += " -- discharged by certification of " +
             RuleList(catalog, cycle.certified) + "\n";
    } else if (!cycle.certified.empty()) {
      out += " -- NOT discharged (certified rules " +
             RuleList(catalog, cycle.certified) +
             " do not break every cycle)\n";
    } else {
      out += " -- NOT discharged (no certified rule on the component)\n";
    }
  }
  out += report.guaranteed
             ? "All cycles discharged: termination GUARANTEED.\n"
             : "Termination MAY NOT hold; certify a quiescent rule on each "
               "cycle or break the cycles.\n";
  return out;
}

std::string ConfluenceReportToString(const ConfluenceReport& report,
                                     const RuleCatalog& catalog) {
  std::string out = "== Confluence (Section 6) ==\n";
  out += "Unordered pairs checked: " +
         std::to_string(report.unordered_pairs_checked) + "\n";
  if (report.confluent) {
    out += "Confluence Requirement holds and termination is guaranteed: "
           "rule set is CONFLUENT (Theorem 6.7).\n";
    return out;
  }
  if (report.requirement_holds) {
    out += "Confluence Requirement holds, but termination is not "
           "guaranteed: confluence NOT established.\n";
    return out;
  }
  out += "Confluence Requirement VIOLATED:\n";
  for (const ConfluenceViolation& v : report.violations) {
    out += "  unordered pair (" + RuleName(catalog, v.pair_i) + ", " +
           RuleName(catalog, v.pair_j) + ") generates R1=" +
           RuleList(catalog, v.set_r1) + " R2=" + RuleList(catalog, v.set_r2) +
           "; witnesses '" + RuleName(catalog, v.r1) + "' and '" +
           RuleName(catalog, v.r2) + "' do not commute:\n";
    for (const NoncommutativityCause& cause : v.causes) {
      out += "    - " +
             cause.Describe(catalog.prelim(), catalog.schema()) + "\n";
    }
  }
  return out;
}

std::string PartialConfluenceReportToString(
    const PartialConfluenceReport& report, const RuleCatalog& catalog) {
  std::string out = "== Partial confluence (Section 7) ==\n";
  out += "T' = {";
  for (size_t i = 0; i < report.tables.size(); ++i) {
    if (i > 0) out += ", ";
    TableId t = report.tables[i];
    out += t >= 0 && t < catalog.schema().num_tables()
               ? catalog.schema().table(t).name()
               : "Obs";
  }
  out += "}\n";
  out += "Sig(T') = " + RuleList(catalog, report.significant) + "\n";
  out += report.termination.guaranteed
             ? "Sig(T') terminates when processed on its own.\n"
             : "Sig(T') termination NOT established.\n";
  out += report.partially_confluent
             ? "Rule set is PARTIALLY CONFLUENT with respect to T' "
               "(Theorem 7.2).\n"
             : "Partial confluence NOT established.\n";
  if (!report.confluence.violations.empty()) {
    out += ConfluenceReportToString(report.confluence, catalog);
  }
  return out;
}

std::string ObservableReportToString(const ObservableDeterminismReport& report,
                                     const RuleCatalog& catalog) {
  std::string out = "== Observable determinism (Section 8) ==\n";
  out += "Observable rules: " + RuleList(catalog, report.observable_rules) +
         "\n";
  out += "Sig(Obs) = " + RuleList(catalog, report.obs_confluence.significant) +
         "\n";
  if (report.deterministic) {
    out += "Rule set is OBSERVABLY DETERMINISTIC (Theorem 8.1).\n";
  } else {
    out += "Observable determinism NOT established";
    if (!report.whole_set_termination) {
      out += " (whole-set termination not guaranteed)";
    }
    out += ".\n";
    for (const auto& [i, j] : report.unordered_observable_pairs) {
      out += "  observable rules '" + RuleName(catalog, i) + "' and '" +
             RuleName(catalog, j) +
             "' are unordered (violates Corollary 8.2)\n";
    }
  }
  return out;
}

std::string FullReportToString(const FullReport& report,
                               const RuleCatalog& catalog) {
  std::string out = TerminationReportToString(report.termination, catalog);
  out += ConfluenceReportToString(report.confluence, catalog);
  out += ObservableReportToString(report.observable, catalog);
  if (!report.suggestions.empty()) {
    out += "== Suggestions (Section 6.4) ==\n";
    for (const Suggestion& s : report.suggestions) {
      out += "  * " + s.Describe(catalog.prelim()) + "\n";
    }
  }
  if (!report.lints.empty()) {
    out += "== Lints (Corollaries 6.9 / 6.10) ==\n";
    for (const std::string& lint : report.lints) {
      out += "  ! " + lint + "\n";
    }
  }
  return out;
}

}  // namespace starburst
