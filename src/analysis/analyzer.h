#ifndef STARBURST_ANALYSIS_ANALYZER_H_
#define STARBURST_ANALYSIS_ANALYZER_H_

#include <memory>
#include <string>
#include <vector>

#include "analysis/commutativity.h"
#include "analysis/confluence.h"
#include "analysis/observable.h"
#include "analysis/partial_confluence.h"
#include "analysis/suggest.h"
#include "analysis/termination.h"
#include "common/status.h"
#include "rules/rule_catalog.h"

namespace starburst {

/// Options for Analyzer::AnalyzeAll / ParallelAnalyzeRuleSets.
struct AnalyzerOptions {
  /// Stop enumerating violations per report after this many (-1 = all).
  int max_violations = -1;
  /// When true, process-wide metrics collection (common/metrics.h) is held
  /// on for the duration of the analysis; the analyzer flushes its
  /// `analysis.*` counters into the registry as it runs. Equivalent to
  /// wrapping the call in metrics::ScopedCollect.
  bool collect_metrics = false;
};

/// The combined result of running every analysis on a rule set.
struct FullReport {
  TerminationReport termination;
  ConfluenceReport confluence;
  ObservableDeterminismReport observable;
  std::vector<Suggestion> suggestions;
  /// Corollary 6.9 / 6.10 structural warnings (see CorollaryLints()).
  std::vector<std::string> lints;
};

/// The interactive analysis facade the paper's development environment is
/// built around (Sections 1, 5, 6.4): run the analyses, read the isolated
/// problems, certify commutativity / quiescence or add orderings, and run
/// again.
class Analyzer {
 public:
  /// Validates and compiles `rules` against `schema` (which must outlive
  /// the analyzer).
  static Result<Analyzer> Create(const Schema* schema,
                                 std::vector<RuleDef> rules);

  /// Creates from an already-built catalog.
  explicit Analyzer(RuleCatalog catalog);

  /// Move drops the lazily-built commutativity cache: it holds references
  /// into the catalog, which relocates on move.
  Analyzer(Analyzer&& other) noexcept;
  Analyzer& operator=(Analyzer&& other) noexcept;

  const RuleCatalog& catalog() const { return catalog_; }

  /// Interactive certifications (Section 5 / Section 6.1). Each call
  /// invalidates cached analyzers so the next analysis reflects it.
  void CertifyQuiescent(const std::string& rule_name);
  void CertifyCommute(const std::string& rule_a, const std::string& rule_b);

  /// Runs the automatic Section 6.1 refinement (PredicateRefiner): pairs
  /// flagged by Lemma 6.1 whose conflicts are provably harmless (inserts
  /// never matching delete conditions, updates of disjoint tuples) are
  /// certified as commuting without user involvement. Returns the number
  /// of newly certified pairs.
  int ApplyAutoRefinement();

  /// Runs the automatic Section 5 cycle discharge (AutoDischargeDetector):
  /// delete-only and bounded-increment rules on triggering-graph cycles
  /// are certified as eventually quiescent. Returns the number of newly
  /// certified rules.
  int ApplyAutoDischarge();

  const TerminationCertifications& termination_certifications() const {
    return termination_certs_;
  }
  const CommutativityCertifications& commutativity_certifications() const {
    return commutativity_certs_;
  }

  /// Section 5.
  TerminationReport AnalyzeTermination();

  /// Section 6 (runs termination first, per Theorem 6.7).
  ConfluenceReport AnalyzeConfluence(int max_violations = -1);

  /// Section 7; `table_names` is T'. Fails on unknown table names.
  Result<PartialConfluenceReport> AnalyzePartialConfluence(
      const std::vector<std::string>& table_names, int max_violations = -1);

  /// Section 8.
  ObservableDeterminismReport AnalyzeObservableDeterminism(
      int max_violations = -1);

  /// Everything, plus Section 6.4 suggestions for any confluence
  /// violations.
  FullReport AnalyzeAll(int max_violations = -1);
  FullReport AnalyzeAll(const AnalyzerOptions& options);

  /// The certification-aware commutativity analyzer over the current
  /// certifications (rebuilt lazily after certifications change).
  const CommutativityAnalyzer& commutativity();

 private:
  RuleCatalog catalog_;
  TerminationCertifications termination_certs_;
  CommutativityCertifications commutativity_certs_;
  std::unique_ptr<CommutativityAnalyzer> commutativity_;  // lazy cache
};

/// One independent rule set for batch analysis: the schema (which must
/// outlive the call) plus the rules to compile against it.
struct RuleSetSpec {
  const Schema* schema = nullptr;
  std::vector<RuleDef> rules;
};

/// Analyzes independent rule sets concurrently on the shared thread pool
/// (batch workloads: the bundled applications, per-seed experiment sweeps).
/// Results are returned in input order and are identical for any thread
/// count — each rule set is analyzed in isolation, and a spec that fails to
/// compile yields its error Status in its slot instead of failing the
/// batch.
std::vector<Result<FullReport>> ParallelAnalyzeRuleSets(
    std::vector<RuleSetSpec> specs, int max_violations = -1);

}  // namespace starburst

#endif  // STARBURST_ANALYSIS_ANALYZER_H_
