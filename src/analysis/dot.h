#ifndef STARBURST_ANALYSIS_DOT_H_
#define STARBURST_ANALYSIS_DOT_H_

#include <string>

#include "analysis/termination.h"
#include "rules/explorer.h"
#include "rules/rule_catalog.h"

namespace starburst {

/// GraphViz DOT renderings for the interactive development environment
/// the paper proposes (Sections 1 and 9): the rule programmer looks at the
/// triggering graph to understand termination problems and at small
/// execution graphs to understand divergence.

/// Renders the triggering graph TG_R. Solid edges are the Triggers
/// relation; dashed edges are the transitive reduction of the priority
/// order (higher -> lower). When `termination` is given, rules on
/// undischarged cyclic components are drawn red and rules on discharged
/// components orange.
std::string TriggeringGraphToDot(const RuleCatalog& catalog,
                                 const TerminationReport* termination);

/// Renders an execution graph recorded by the Explorer (run with
/// ExplorerOptions::record_graph). Nodes are execution states (final
/// states drawn as double circles); edge labels are the considered rules.
std::string ExecutionGraphToDot(const ExplorationResult& result,
                                const RuleCatalog& catalog);

}  // namespace starburst

#endif  // STARBURST_ANALYSIS_DOT_H_
