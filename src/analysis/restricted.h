#ifndef STARBURST_ANALYSIS_RESTRICTED_H_
#define STARBURST_ANALYSIS_RESTRICTED_H_

#include <vector>

#include "analysis/commutativity.h"
#include "analysis/confluence.h"
#include "analysis/termination.h"

namespace starburst {

/// Analysis under restricted user operations (Section 9, future work,
/// implemented here): when users are known to perform only the operations
/// in `allowed` on certain tables, only rules reachable in the triggering
/// graph from the initially-triggerable rules can ever run. Analyzing that
/// subset may guarantee properties that do not hold for arbitrary
/// operations.
struct RestrictedAnalysisReport {
  /// Rules triggerable directly by the allowed user operations.
  std::vector<RuleIndex> initially_triggerable;
  /// Closure of the above under the Triggers relation — the rules that can
  /// ever be considered.
  std::vector<RuleIndex> relevant;
  /// Termination of the relevant subset.
  TerminationReport termination;
  /// Confluence Requirement over the relevant subset.
  ConfluenceReport confluence;
};

class RestrictedOpsAnalyzer {
 public:
  /// Rules whose Triggered-By intersects `allowed`, closed under Triggers.
  static std::vector<RuleIndex> RelevantRules(const PrelimAnalysis& prelim,
                                              const OperationSet& allowed);

  static RestrictedAnalysisReport Analyze(
      const CommutativityAnalyzer& commutativity,
      const PriorityOrder& priority, const OperationSet& allowed,
      const TerminationCertifications& termination_certs = {},
      int max_violations = -1);
};

}  // namespace starburst

#endif  // STARBURST_ANALYSIS_RESTRICTED_H_
