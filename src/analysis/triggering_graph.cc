#include "analysis/triggering_graph.h"

#include <algorithm>
#include <functional>

namespace starburst {

TriggeringGraph::TriggeringGraph(const PrelimAnalysis& prelim) {
  int n = prelim.num_rules();
  is_member_.assign(n, true);
  adjacency_.assign(n, {});
  for (RuleIndex i = 0; i < n; ++i) adjacency_[i] = prelim.Triggers(i);
  ComputeComponents();
}

TriggeringGraph::TriggeringGraph(const PrelimAnalysis& prelim,
                                 const std::vector<RuleIndex>& members) {
  int n = prelim.num_rules();
  is_member_.assign(n, false);
  for (RuleIndex r : members) is_member_[r] = true;
  adjacency_.assign(n, {});
  for (RuleIndex i = 0; i < n; ++i) {
    if (!is_member_[i]) continue;
    for (RuleIndex j : prelim.Triggers(i)) {
      if (is_member_[j]) adjacency_[i].push_back(j);
    }
  }
  ComputeComponents();
}

const std::vector<RuleIndex>& TriggeringGraph::OutEdges(RuleIndex r) const {
  return adjacency_[r];
}

bool TriggeringGraph::HasEdge(RuleIndex from, RuleIndex to) const {
  const auto& edges = adjacency_[from];
  return std::binary_search(edges.begin(), edges.end(), to);
}

void TriggeringGraph::ComputeComponents() {
  // Iterative Tarjan SCC.
  int n = num_rules();
  components_.clear();
  std::vector<int> index(n, -1), lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  int next_index = 0;

  struct Frame {
    int v;
    size_t edge;
  };

  for (int root = 0; root < n; ++root) {
    if (!is_member_[root] || index[root] != -1) continue;
    std::vector<Frame> frames;
    frames.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.edge < adjacency_[frame.v].size()) {
        int w = adjacency_[frame.v][frame.edge++];
        if (index[w] == -1) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[frame.v] = std::min(lowlink[frame.v], index[w]);
        }
      } else {
        int v = frame.v;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().v] = std::min(lowlink[frames.back().v],
                                              lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          std::vector<RuleIndex> component;
          while (true) {
            int w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component.push_back(w);
            if (w == v) break;
          }
          std::sort(component.begin(), component.end());
          components_.push_back(std::move(component));
        }
      }
    }
  }
}

std::vector<std::vector<RuleIndex>> TriggeringGraph::CyclicComponents() const {
  std::vector<std::vector<RuleIndex>> cyclic;
  for (const auto& component : components_) {
    if (component.size() > 1) {
      cyclic.push_back(component);
    } else if (component.size() == 1) {
      RuleIndex r = component[0];
      if (HasEdge(r, r)) cyclic.push_back(component);
    }
  }
  return cyclic;
}

bool TriggeringGraph::AcyclicWithout(
    const std::vector<RuleIndex>& nodes,
    const std::vector<RuleIndex>& removed) const {
  std::vector<bool> active(num_rules(), false);
  for (RuleIndex r : nodes) active[r] = true;
  for (RuleIndex r : removed) active[r] = false;
  // DFS cycle check over the active subgraph.
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(num_rules(), Color::kWhite);
  std::function<bool(RuleIndex)> has_cycle = [&](RuleIndex v) -> bool {
    color[v] = Color::kGray;
    for (RuleIndex w : adjacency_[v]) {
      if (!active[w]) continue;
      if (color[w] == Color::kGray) return true;
      if (color[w] == Color::kWhite && has_cycle(w)) return true;
    }
    color[v] = Color::kBlack;
    return false;
  };
  for (RuleIndex r : nodes) {
    if (active[r] && color[r] == Color::kWhite && has_cycle(r)) return false;
  }
  return true;
}

}  // namespace starburst
