#include "analysis/triggering_graph.h"

#include <algorithm>

namespace starburst {

namespace {

/// HasEdge() binary-searches adjacency rows, so their sortedness is a hard
/// invariant. PrelimAnalysis::Triggers() rows are built sorted, but the
/// graph enforces it anyway — a cheap is_sorted scan in the common case.
void EnsureSorted(std::vector<std::vector<RuleIndex>>* adjacency) {
  for (std::vector<RuleIndex>& row : *adjacency) {
    if (!std::is_sorted(row.begin(), row.end())) {
      std::sort(row.begin(), row.end());
    }
  }
}

}  // namespace

TriggeringGraph::TriggeringGraph(const PrelimAnalysis& prelim) {
  int n = prelim.num_rules();
  is_member_.assign(n, true);
  adjacency_.assign(n, {});
  for (RuleIndex i = 0; i < n; ++i) adjacency_[i] = prelim.Triggers(i);
  EnsureSorted(&adjacency_);
  ComputeComponents();
}

TriggeringGraph::TriggeringGraph(const PrelimAnalysis& prelim,
                                 const std::vector<RuleIndex>& members) {
  int n = prelim.num_rules();
  is_member_.assign(n, false);
  for (RuleIndex r : members) is_member_[r] = true;
  adjacency_.assign(n, {});
  for (RuleIndex i = 0; i < n; ++i) {
    if (!is_member_[i]) continue;
    for (RuleIndex j : prelim.Triggers(i)) {
      if (is_member_[j]) adjacency_[i].push_back(j);
    }
  }
  EnsureSorted(&adjacency_);
  ComputeComponents();
}

const std::vector<RuleIndex>& TriggeringGraph::OutEdges(RuleIndex r) const {
  return adjacency_[r];
}

bool TriggeringGraph::HasEdge(RuleIndex from, RuleIndex to) const {
  const auto& edges = adjacency_[from];
  return std::binary_search(edges.begin(), edges.end(), to);
}

void TriggeringGraph::ComputeComponents() {
  // Iterative Tarjan SCC, emitting into the flat comp_nodes_/comp_start_
  // arrays (no per-component heap vector).
  int n = num_rules();
  comp_nodes_.clear();
  comp_start_.clear();
  comp_start_.push_back(0);
  std::vector<int> index(n, -1), lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  int next_index = 0;

  struct Frame {
    int v;
    size_t edge;
  };
  std::vector<Frame> frames;

  for (int root = 0; root < n; ++root) {
    if (!is_member_[root] || index[root] != -1) continue;
    frames.clear();
    frames.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.edge < adjacency_[frame.v].size()) {
        int w = adjacency_[frame.v][frame.edge++];
        if (index[w] == -1) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[frame.v] = std::min(lowlink[frame.v], index[w]);
        }
      } else {
        int v = frame.v;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().v] = std::min(lowlink[frames.back().v],
                                              lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          size_t begin = comp_nodes_.size();
          while (true) {
            int w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp_nodes_.push_back(w);
            if (w == v) break;
          }
          std::sort(comp_nodes_.begin() + begin, comp_nodes_.end());
          comp_start_.push_back(static_cast<int>(comp_nodes_.size()));
        }
      }
    }
  }
}

std::vector<std::vector<RuleIndex>> TriggeringGraph::Components() const {
  std::vector<std::vector<RuleIndex>> components;
  size_t num = comp_start_.size() - 1;
  components.reserve(num);
  for (size_t c = 0; c < num; ++c) {
    components.emplace_back(comp_nodes_.begin() + comp_start_[c],
                            comp_nodes_.begin() + comp_start_[c + 1]);
  }
  return components;
}

std::vector<std::vector<RuleIndex>> TriggeringGraph::CyclicComponents() const {
  std::vector<std::vector<RuleIndex>> cyclic;
  size_t num = comp_start_.size() - 1;
  for (size_t c = 0; c < num; ++c) {
    int begin = comp_start_[c], end = comp_start_[c + 1];
    bool is_cyclic = end - begin > 1 ||
                     (end - begin == 1 &&
                      HasEdge(comp_nodes_[begin], comp_nodes_[begin]));
    if (is_cyclic) {
      cyclic.emplace_back(comp_nodes_.begin() + begin,
                          comp_nodes_.begin() + end);
    }
  }
  return cyclic;
}

bool TriggeringGraph::AcyclicWithout(
    const std::vector<RuleIndex>& nodes,
    const std::vector<RuleIndex>& removed) const {
  std::vector<bool> active(num_rules(), false);
  for (RuleIndex r : nodes) active[r] = true;
  for (RuleIndex r : removed) active[r] = false;
  // Explicit-stack DFS cycle check over the active subgraph (a recursive
  // DFS overflows the call stack on deep trigger chains — 10k+ rules).
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(num_rules(), Color::kWhite);
  struct Frame {
    RuleIndex v;
    size_t edge;
  };
  std::vector<Frame> frames;
  for (RuleIndex r : nodes) {
    if (!active[r] || color[r] != Color::kWhite) continue;
    color[r] = Color::kGray;
    frames.clear();
    frames.push_back({r, 0});
    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.edge < adjacency_[frame.v].size()) {
        RuleIndex w = adjacency_[frame.v][frame.edge++];
        if (!active[w]) continue;
        if (color[w] == Color::kGray) return false;
        if (color[w] == Color::kWhite) {
          color[w] = Color::kGray;
          frames.push_back({w, 0});
        }
      } else {
        color[frame.v] = Color::kBlack;
        frames.pop_back();
      }
    }
  }
  return true;
}

}  // namespace starburst
