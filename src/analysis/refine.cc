#include "analysis/refine.h"

#include <limits>

#include "common/strings.h"

namespace starburst {

namespace {

constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
constexpr int64_t kMax = std::numeric_limits<int64_t>::max();

/// Returns the int64 value of a literal expression (including a negated
/// int literal), or nullopt when the expression's value is not statically
/// known. A NULL literal returns nullopt as well — callers treat NULL
/// specially.
std::optional<int64_t> LiteralInt(const Expr& expr) {
  if (expr.kind == ExprKind::kLiteral &&
      expr.literal.kind == LiteralValue::Kind::kInt) {
    return expr.literal.int_value;
  }
  if (expr.kind == ExprKind::kUnary && expr.unary_op == UnaryOp::kNeg &&
      expr.left != nullptr) {
    auto inner = LiteralInt(*expr.left);
    if (inner.has_value()) return -*inner;
  }
  return std::nullopt;
}

bool IsNullLiteral(const Expr& expr) {
  return expr.kind == ExprKind::kLiteral &&
         expr.literal.kind == LiteralValue::Kind::kNull;
}

/// Flips a comparison for `literal op column` form.
BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;  // kEq is symmetric; others unused
  }
}

Interval IntervalFor(BinaryOp op, int64_t v) {
  switch (op) {
    case BinaryOp::kEq:
      return Interval::Exactly(v);
    case BinaryOp::kLt:
      return v == kMin ? Interval{1, 0} : Interval::AtMost(v - 1);
    case BinaryOp::kLe:
      return Interval::AtMost(v);
    case BinaryOp::kGt:
      return v == kMax ? Interval{1, 0} : Interval::AtLeast(v + 1);
    case BinaryOp::kGe:
      return Interval::AtLeast(v);
    default:
      return Interval::All();
  }
}

bool IsComparison(BinaryOp op) {
  return op == BinaryOp::kEq || op == BinaryOp::kLt || op == BinaryOp::kLe ||
         op == BinaryOp::kGt || op == BinaryOp::kGe;
}

/// Resolves a column reference against the target table; kInvalidColumnId
/// when it does not (or cannot be proven to) refer to the target row.
ColumnId ResolveTargetColumn(const Schema& schema, TableId table,
                             const std::string& binding, const Expr& expr) {
  if (expr.kind != ExprKind::kColumnRef) return kInvalidColumnId;
  if (!expr.qualifier.empty() && !EqualsIgnoreCase(expr.qualifier, binding)) {
    return kInvalidColumnId;
  }
  return schema.table(table).FindColumn(expr.column);
}

/// Recursive constraint extraction; returns false when the predicate is
/// not a pure conjunction of column/int-literal comparisons.
bool Extract(const Schema& schema, TableId table, const std::string& binding,
             const Expr& expr, std::map<ColumnId, Interval>* out) {
  if (expr.kind == ExprKind::kBinary && expr.binary_op == BinaryOp::kAnd) {
    return Extract(schema, table, binding, *expr.left, out) &&
           Extract(schema, table, binding, *expr.right, out);
  }
  if (expr.kind != ExprKind::kBinary || !IsComparison(expr.binary_op)) {
    return false;
  }
  ColumnId col = ResolveTargetColumn(schema, table, binding, *expr.left);
  std::optional<int64_t> value;
  BinaryOp op = expr.binary_op;
  if (col != kInvalidColumnId) {
    value = LiteralInt(*expr.right);
  } else {
    col = ResolveTargetColumn(schema, table, binding, *expr.right);
    if (col == kInvalidColumnId) return false;
    value = LiteralInt(*expr.left);
    op = FlipComparison(op);
  }
  if (!value.has_value()) return false;
  Interval constraint = IntervalFor(op, *value);
  auto [it, inserted] = out->emplace(col, constraint);
  if (!inserted) it->second = it->second.Intersect(constraint);
  return true;
}

/// Columns assigned by an UPDATE statement.
std::vector<ColumnId> SetColumns(const Schema& schema, TableId table,
                                 const Stmt& stmt) {
  std::vector<ColumnId> cols;
  for (const Assignment& a : stmt.assignments) {
    ColumnId c = schema.table(table).FindColumn(a.column);
    if (c != kInvalidColumnId) cols.push_back(c);
  }
  return cols;
}

bool ContainsColumn(const std::map<ColumnId, Interval>& intervals,
                    const std::vector<ColumnId>& cols) {
  for (ColumnId c : cols) {
    if (intervals.count(c) > 0) return true;
  }
  return false;
}

/// Conservative check for whether a rule can read the *current state* of
/// table `t` anywhere except the simple WHEREs of its own DELETE/UPDATE
/// statements on `t` (reads of the matched row in UPDATE SET expressions
/// are also allowed: the matched rows themselves are what the refinement
/// proves unaffected). Transition-table references count as reads of the
/// rule's own table (their contents change when the other rule's action
/// composes into the pending transition). Any unresolvable reference is
/// treated as a read of `t`.
class ReadWalker {
 public:
  ReadWalker(const Schema& schema, const RuleDef& rule, TableId target)
      : schema_(schema), rule_(rule), target_(target) {}

  /// True when the rule MIGHT read `target_` outside allowed positions.
  bool MightRead() {
    TableId own = schema_.FindTable(rule_.table);
    if (rule_.condition != nullptr) {
      if (WalkExpr(*rule_.condition)) return true;
    }
    (void)own;
    for (const StmtPtr& stmt : rule_.actions) {
      switch (stmt->kind) {
        case StmtKind::kSelect:
          if (WalkSelect(*stmt->select)) return true;
          break;
        case StmtKind::kRollback:
          break;
        case StmtKind::kInsert: {
          for (const auto& row : stmt->insert_rows) {
            for (const ExprPtr& e : row) {
              if (WalkExpr(*e)) return true;
            }
          }
          if (stmt->insert_select != nullptr &&
              WalkSelect(*stmt->insert_select)) {
            return true;
          }
          break;
        }
        case StmtKind::kDelete: {
          TableId t = schema_.FindTable(stmt->table);
          if (stmt->where == nullptr) break;
          if (t == target_) {
            // Allowed only if the WHERE is simple (caller refutes it).
            std::map<ColumnId, Interval> scratch;
            if (!Extract(schema_, t, stmt->table, *stmt->where, &scratch)) {
              return true;
            }
          } else {
            scope_.push_back({ToLower(stmt->table), t, /*allowed=*/false});
            bool reads = WalkExpr(*stmt->where);
            scope_.pop_back();
            if (reads) return true;
          }
          break;
        }
        case StmtKind::kUpdate: {
          TableId t = schema_.FindTable(stmt->table);
          bool is_target = t == target_;
          if (stmt->where != nullptr) {
            if (is_target) {
              std::map<ColumnId, Interval> scratch;
              if (!Extract(schema_, t, stmt->table, *stmt->where, &scratch)) {
                return true;
              }
            } else {
              scope_.push_back({ToLower(stmt->table), t, false});
              bool reads = WalkExpr(*stmt->where);
              scope_.pop_back();
              if (reads) return true;
            }
          }
          // SET expressions see the matched row; reads of the target's own
          // columns through it are allowed (matched rows are unaffected).
          scope_.push_back({ToLower(stmt->table), t, /*allowed=*/is_target});
          for (const Assignment& a : stmt->assignments) {
            if (WalkExpr(*a.value)) {
              scope_.pop_back();
              return true;
            }
          }
          scope_.pop_back();
          break;
        }
        case StmtKind::kCreateTable:
          return true;  // should not appear; be conservative
      }
    }
    return false;
  }

 private:
  struct ScopeRel {
    std::string binding;  // lowercased
    TableId table;
    bool allowed;  // reads through this relation do not count
  };

  bool TableIsTarget(TableId t) const { return t == target_; }

  bool WalkSelect(const SelectStmt& select) {
    size_t before = scope_.size();
    for (const TableRef& ref : select.from) {
      ScopeRel rel;
      rel.binding = ToLower(ref.BindingName());
      rel.allowed = false;
      if (ref.is_transition) {
        // Transition tables reflect the rule's pending transition on its
        // own table; treat as a read of that table.
        rel.table = schema_.FindTable(rule_.table);
      } else {
        rel.table = schema_.FindTable(ref.table);
      }
      if (rel.table == kInvalidTableId) {
        scope_.resize(before);
        return true;  // unknown relation: conservative
      }
      if (TableIsTarget(rel.table)) {
        scope_.resize(before);
        return true;  // scanning the target table
      }
      scope_.push_back(rel);
    }
    bool reads = false;
    for (const SelectItem& item : select.items) {
      if (item.expr != nullptr && WalkExpr(*item.expr)) reads = true;
    }
    if (!reads && select.where != nullptr && WalkExpr(*select.where)) {
      reads = true;
    }
    scope_.resize(before);
    return reads;
  }

  bool WalkExpr(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kLiteral:
        return false;
      case ExprKind::kColumnRef: {
        if (!expr.qualifier.empty()) {
          if (ParseTransitionTableKind(expr.qualifier).has_value()) {
            return TableIsTarget(schema_.FindTable(rule_.table));
          }
          std::string key = ToLower(expr.qualifier);
          for (auto it = scope_.rbegin(); it != scope_.rend(); ++it) {
            if (it->binding == key) {
              return !it->allowed && TableIsTarget(it->table);
            }
          }
          TableId t = schema_.FindTable(expr.qualifier);
          if (t == kInvalidTableId) return true;  // unresolvable
          return TableIsTarget(t);
        }
        // Unqualified: innermost scope relation with the column.
        for (auto it = scope_.rbegin(); it != scope_.rend(); ++it) {
          if (schema_.table(it->table).FindColumn(expr.column) !=
              kInvalidColumnId) {
            return !it->allowed && TableIsTarget(it->table);
          }
        }
        // Unresolved: a read of the target if it has such a column.
        return schema_.table(target_).FindColumn(expr.column) !=
               kInvalidColumnId;
      }
      case ExprKind::kUnary:
        return WalkExpr(*expr.left);
      case ExprKind::kBinary:
        return WalkExpr(*expr.left) || WalkExpr(*expr.right);
      case ExprKind::kExists:
      case ExprKind::kScalarSubquery:
        return WalkSelect(*expr.subquery);
      case ExprKind::kIn:
        return WalkExpr(*expr.left) || WalkSelect(*expr.subquery);
    }
    return true;
  }

  const Schema& schema_;
  const RuleDef& rule_;
  TableId target_;
  std::vector<ScopeRel> scope_;
};

}  // namespace

Interval Interval::All() { return {kMin, kMax}; }
Interval Interval::AtMost(int64_t v) { return {kMin, v}; }
Interval Interval::AtLeast(int64_t v) { return {v, kMax}; }
Interval Interval::Exactly(int64_t v) { return {v, v}; }

Interval Interval::Intersect(const Interval& other) const {
  return {lo > other.lo ? lo : other.lo, hi < other.hi ? hi : other.hi};
}

ColumnConstraints PredicateRefiner::ExtractConstraints(
    const Schema& schema, TableId table, const std::string& binding,
    const Expr* where) {
  ColumnConstraints out;
  if (where == nullptr) {
    out.simple = true;  // matches every row
    return out;
  }
  out.simple = Extract(schema, table, binding, *where, &out.intervals);
  if (!out.simple) out.intervals.clear();
  return out;
}

bool PredicateRefiner::RowDefinitelyFails(
    const Schema& schema, TableId table, const std::vector<ColumnId>& columns,
    const std::vector<ExprPtr>& row_exprs,
    const ColumnConstraints& constraints) {
  (void)schema;
  (void)table;
  if (!constraints.simple) return false;
  // An unsatisfiable WHERE rejects every row.
  for (const auto& [col, interval] : constraints.intervals) {
    if (interval.empty()) return true;
  }
  if (constraints.intervals.empty()) return false;  // matches every row
  // Build column -> expr for the row; columns not listed default to NULL.
  std::map<ColumnId, const Expr*> values;
  for (size_t i = 0; i < columns.size() && i < row_exprs.size(); ++i) {
    values[columns[i]] = row_exprs[i].get();
  }
  for (const auto& [col, interval] : constraints.intervals) {
    auto it = values.find(col);
    if (it == values.end()) {
      // Unlisted insert column is NULL: the comparison is unknown, so the
      // conjunct filters the row out.
      return true;
    }
    if (IsNullLiteral(*it->second)) return true;
    std::optional<int64_t> v = LiteralInt(*it->second);
    if (v.has_value() && !interval.Contains(*v)) return true;
  }
  return false;
}

bool PredicateRefiner::InsertsNeverMatchOnTable(const RuleDef& inserter,
                                                const RuleDef& writer,
                                                TableId t) const {
  for (const StmtPtr& ins : inserter.actions) {
    if (ins->kind != StmtKind::kInsert) continue;
    if (schema_.FindTable(ins->table) != t) continue;
    // INSERT ... SELECT rows are not statically known.
    if (ins->insert_select != nullptr) return false;
    // Resolve the insert's column list.
    std::vector<ColumnId> cols;
    if (ins->insert_columns.empty()) {
      for (ColumnId c = 0; c < schema_.table(t).num_columns(); ++c) {
        cols.push_back(c);
      }
    } else {
      for (const std::string& name : ins->insert_columns) {
        cols.push_back(schema_.table(t).FindColumn(name));
      }
    }
    for (const StmtPtr& wr : writer.actions) {
      if (wr->kind != StmtKind::kDelete && wr->kind != StmtKind::kUpdate) {
        continue;
      }
      if (schema_.FindTable(wr->table) != t) continue;
      ColumnConstraints constraints =
          ExtractConstraints(schema_, t, wr->table, wr->where.get());
      if (!constraints.simple) return false;
      for (const auto& row : ins->insert_rows) {
        if (!RowDefinitelyFails(schema_, t, cols, row, constraints)) {
          return false;
        }
      }
    }
  }
  return true;
}

bool PredicateRefiner::RefuteInsertWriteConflict(RuleIndex actor,
                                                 RuleIndex affected) const {
  // Condition 4: actor's insertions can affect what `affected` deletes or
  // updates. Refute on every table they contest.
  const RulePrelim& a = prelim_.rule(actor);
  const RulePrelim& b = prelim_.rule(affected);
  bool found = false;
  for (const Operation& op : a.performs) {
    if (op.kind != Operation::Kind::kInsert) continue;
    bool contested = false;
    for (const Operation& other : b.performs) {
      if (other.table == op.table &&
          (other.kind == Operation::Kind::kDelete ||
           other.kind == Operation::Kind::kUpdate)) {
        contested = true;
      }
    }
    if (!contested) continue;
    found = true;
    if (!InsertsNeverMatchOnTable(rules_[actor], rules_[affected],
                                  op.table)) {
      return false;
    }
  }
  return found;
}

bool PredicateRefiner::RefuteWriteReadConflict(RuleIndex actor,
                                               RuleIndex affected) const {
  // Condition 3: actor writes data that `affected` reads. Refutable only
  // when, on every contested table, the actor's writes are exclusively
  // never-matching INSERT VALUES and the affected rule reads the table
  // nowhere except the refuted simple WHEREs.
  const RulePrelim& a = prelim_.rule(actor);
  const RulePrelim& b = prelim_.rule(affected);
  std::set<TableId> contested;
  for (const Operation& op : a.performs) {
    switch (op.kind) {
      case Operation::Kind::kInsert:
      case Operation::Kind::kDelete: {
        auto it = b.reads.lower_bound(TableColumn{op.table, 0});
        if (it != b.reads.end() && it->table == op.table) {
          if (op.kind == Operation::Kind::kDelete) return false;
          contested.insert(op.table);
        }
        break;
      }
      case Operation::Kind::kUpdate:
        if (b.reads.count(TableColumn{op.table, op.column}) > 0) {
          return false;  // updates changing read data are not refutable
        }
        break;
    }
  }
  if (contested.empty()) return false;  // nothing to refute (be strict)
  for (TableId t : contested) {
    ReadWalker walker(schema_, rules_[affected], t);
    if (walker.MightRead()) return false;
    if (!InsertsNeverMatchOnTable(rules_[actor], rules_[affected], t)) {
      return false;
    }
  }
  return true;
}

bool PredicateRefiner::UpdatesDisjoint(const RuleDef& a,
                                       const RuleDef& b) const {
  bool found_conflict = false;
  for (const StmtPtr& ua : a.actions) {
    if (ua->kind != StmtKind::kUpdate) continue;
    TableId t = schema_.FindTable(ua->table);
    for (const StmtPtr& ub : b.actions) {
      if (ub->kind != StmtKind::kUpdate) continue;
      if (schema_.FindTable(ub->table) != t) continue;
      // Only same-column update pairs are Lemma 6.1 condition-5 conflicts.
      std::vector<ColumnId> set_a = SetColumns(schema_, t, *ua);
      std::vector<ColumnId> set_b = SetColumns(schema_, t, *ub);
      bool overlap = false;
      for (ColumnId ca : set_a) {
        for (ColumnId cb : set_b) {
          overlap = overlap || ca == cb;
        }
      }
      if (!overlap) continue;
      found_conflict = true;

      ColumnConstraints ka =
          ExtractConstraints(schema_, t, ua->table, ua->where.get());
      ColumnConstraints kb =
          ExtractConstraints(schema_, t, ub->table, ub->where.get());
      if (!ka.simple || !kb.simple) return false;
      // Stability: neither update may modify a column constrained by the
      // other's WHERE (it could move rows into the other's range).
      if (ContainsColumn(kb.intervals, set_a) ||
          ContainsColumn(ka.intervals, set_b)) {
        return false;
      }
      // Disjointness: some column constrained by both with an empty
      // intersection (or either side unsatisfiable on its own).
      bool disjoint = false;
      for (const auto& [col, ia] : ka.intervals) {
        if (ia.empty()) disjoint = true;
        auto it = kb.intervals.find(col);
        if (it != kb.intervals.end() && ia.Intersect(it->second).empty()) {
          disjoint = true;
        }
      }
      for (const auto& [col, ib] : kb.intervals) {
        if (ib.empty()) disjoint = true;
      }
      if (!disjoint) return false;
    }
  }
  return found_conflict;
}

bool PredicateRefiner::RefuteCause(const NoncommutativityCause& cause,
                                   RuleIndex i, RuleIndex j) const {
  switch (cause.condition) {
    case 3:
      return RefuteWriteReadConflict(cause.actor, cause.affected);
    case 4:
      return RefuteInsertWriteConflict(cause.actor, cause.affected);
    case 5:
      return UpdatesDisjoint(rules_[i], rules_[j]);
    default:
      // Triggering and untriggering are not refutable by this interval
      // analysis.
      return false;
  }
}

bool PredicateRefiner::PairCommutes(RuleIndex i, RuleIndex j) const {
  auto causes = CommutativityAnalyzer::ExplainPair(prelim_, i, j);
  if (causes.empty()) return true;  // already syntactically commutative
  for (const NoncommutativityCause& cause : causes) {
    if (!RefuteCause(cause, i, j)) return false;
  }
  return true;
}

CommutativityCertifications PredicateRefiner::Refine() const {
  CommutativityCertifications certs;
  int n = prelim_.num_rules();
  for (RuleIndex i = 0; i < n; ++i) {
    for (RuleIndex j = i + 1; j < n; ++j) {
      if (CommutativityAnalyzer::SyntacticallyCommutePair(prelim_, i, j)) {
        continue;
      }
      if (PairCommutes(i, j)) {
        certs.Certify(prelim_.rule(i).name, prelim_.rule(j).name);
      }
    }
  }
  return certs;
}

}  // namespace starburst
