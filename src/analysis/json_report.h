#ifndef STARBURST_ANALYSIS_JSON_REPORT_H_
#define STARBURST_ANALYSIS_JSON_REPORT_H_

#include <string>

#include "analysis/analyzer.h"
#include "analysis/witness.h"
#include "rules/explorer.h"

namespace starburst {

/// Machine-readable (JSON) report rendering, for IDE / tooling integration
/// of the interactive development environment. The schema mirrors the
/// report structs:
///
///   termination: {guaranteed, acyclic, cycles: [{rules, certified,
///                 discharged}]}
///   confluence:  {confluent, requirement_holds, termination_guaranteed,
///                 unordered_pairs_checked, violations: [{pair, witnesses,
///                 r1_set, r2_set, causes: [{condition, actor, affected}]}]}
///   observable:  {deterministic, observable_rules, sig_obs,
///                 unordered_observable_pairs}
///   suggestions: [{kind, rules}]
///
/// Rule references are emitted as names.
std::string TerminationReportToJson(const TerminationReport& report,
                                    const RuleCatalog& catalog);
std::string ConfluenceReportToJson(const ConfluenceReport& report,
                                   const RuleCatalog& catalog);
std::string ObservableReportToJson(const ObservableDeterminismReport& report,
                                   const RuleCatalog& catalog);
std::string FullReportToJson(const FullReport& report,
                             const RuleCatalog& catalog);

/// As above, with a divergence-witness section appended as "witness" when
/// `witness` is non-null. The two-argument overload's output is unchanged
/// byte for byte (the delta_equivalence fuzz oracle pins it).
std::string FullReportToJson(const FullReport& report,
                             const RuleCatalog& catalog,
                             const WitnessExtraction* witness);

/// The divergence-witness section on its own (the golden-corpus and
/// tools/explain --json format):
///
///   {status: "found"|"none"|"not_evaluated" [, note] [, witness: {kind,
///    sequence_a, sequence_b, prefix_len, diverge, pair, pair_explained,
///    causes: [{condition, actor, affected}], overlap_tables, final_a,
///    final_b, stream_a, stream_b, rollback_a, rollback_b}]}
std::string WitnessExtractionToJson(const WitnessExtraction& extraction,
                                    const RuleCatalog& catalog);

/// Exploration instrumentation (states interned, dedup hits, peak stack
/// depth, canonicalization bytes, wall time) — lets the benches and the
/// interactive environment report explorer cost alongside verdicts:
///
///   {states_interned, dedup_hits, peak_stack_depth,
///    canonicalization_bytes, wall_seconds}
std::string ExplorationStatsToJson(const ExplorationStats& stats);

/// Escapes a string for inclusion in a JSON string literal (quotes not
/// included). Exposed for tests.
std::string JsonEscape(const std::string& s);

}  // namespace starburst

#endif  // STARBURST_ANALYSIS_JSON_REPORT_H_
