#include "analysis/rule_index.h"

#include <algorithm>

#include "analysis/prelim.h"

namespace starburst {

namespace {

void InsertSortedTable(std::vector<TableId>* tables, TableId t) {
  auto it = std::lower_bound(tables->begin(), tables->end(), t);
  if (it == tables->end() || *it != t) tables->insert(it, t);
}

void EraseSorted(std::vector<RuleIndex>* rules, RuleIndex r) {
  auto it = std::lower_bound(rules->begin(), rules->end(), r);
  if (it != rules->end() && *it == r) rules->erase(it);
}

}  // namespace

std::vector<TableId> RuleFootprintIndex::FootprintOf(const RulePrelim& prelim) {
  std::vector<TableId> tables;
  InsertSortedTable(&tables, prelim.table);  // tables(Triggered-By) = {table}
  for (const Operation& op : prelim.performs) {
    InsertSortedTable(&tables, op.table);
  }
  for (const TableColumn& read : prelim.reads) {
    InsertSortedTable(&tables, read.table);
  }
  return tables;
}

void RuleFootprintIndex::Clear() {
  footprints_.clear();
  own_table_.clear();
  touching_.clear();
  on_table_.clear();
}

void RuleFootprintIndex::Build(const std::vector<RulePrelim>& prelims) {
  Clear();
  footprints_.reserve(prelims.size());
  own_table_.reserve(prelims.size());
  for (const RulePrelim& prelim : prelims) Append(prelim);
}

void RuleFootprintIndex::Append(const RulePrelim& prelim) {
  RuleIndex r = num_rules();
  footprints_.push_back(FootprintOf(prelim));
  own_table_.push_back(prelim.table);
  for (TableId t : footprints_.back()) touching_[t].push_back(r);
  on_table_[prelim.table].push_back(r);
}

void RuleFootprintIndex::Remove(RuleIndex r) {
  for (TableId t : footprints_[r]) EraseSorted(&touching_[t], r);
  EraseSorted(&on_table_[own_table_[r]], r);
  footprints_.erase(footprints_.begin() + r);
  own_table_.erase(own_table_.begin() + r);
  for (auto& [table, rules] : touching_) {
    for (RuleIndex& rule : rules) {
      if (rule > r) --rule;
    }
  }
  for (auto& [table, rules] : on_table_) {
    for (RuleIndex& rule : rules) {
      if (rule > r) --rule;
    }
  }
}

const std::vector<RuleIndex>& RuleFootprintIndex::RulesTouching(
    TableId t) const {
  auto it = touching_.find(t);
  return it == touching_.end() ? empty_ : it->second;
}

const std::vector<RuleIndex>& RuleFootprintIndex::RulesOn(TableId t) const {
  auto it = on_table_.find(t);
  return it == on_table_.end() ? empty_ : it->second;
}

std::vector<RuleIndex> RuleFootprintIndex::OverlapCandidates(
    RuleIndex r) const {
  std::vector<RuleIndex> out;
  for (TableId t : footprints_[r]) {
    const std::vector<RuleIndex>& bucket = RulesTouching(t);
    out.insert(out.end(), bucket.begin(), bucket.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  EraseSorted(&out, r);
  return out;
}

}  // namespace starburst
