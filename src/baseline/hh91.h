#ifndef STARBURST_BASELINE_HH91_H_
#define STARBURST_BASELINE_HH91_H_

#include <utility>
#include <vector>

#include "analysis/commutativity.h"

namespace starburst {

/// A reconstruction of the unique-fixed-point criterion of
/// [HH91] (Hellerstein & Hsu, "Determinism in partially ordered production
/// systems"), mapped onto our rule language as sketched in Section 9 of
/// the paper: a rule set is guaranteed a unique fixed point when every
/// pair of distinct rules commutes, regardless of priorities.
///
/// Section 9's claim, which exp_subsumption verifies empirically: whenever
/// this criterion accepts, the Confluence Requirement of Definition 6.5
/// also holds (every R1 × R2 witness pair commutes), but not vice-versa —
/// our analysis additionally accepts sets whose noncommuting pairs are
/// protected by priority orderings.
struct HH91Report {
  bool accepted = false;
  /// The first (or all, up to a bound) noncommuting pairs found.
  std::vector<std::pair<RuleIndex, RuleIndex>> noncommuting_pairs;
};

class HH91Analyzer {
 public:
  /// `max_pairs` bounds the reported pairs (negative = unlimited).
  static HH91Report Analyze(const CommutativityAnalyzer& commutativity,
                            int max_pairs = 8);
};

}  // namespace starburst

#endif  // STARBURST_BASELINE_HH91_H_
