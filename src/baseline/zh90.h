#ifndef STARBURST_BASELINE_ZH90_H_
#define STARBURST_BASELINE_ZH90_H_

#include "analysis/commutativity.h"
#include "baseline/hh91.h"

namespace starburst {

/// A reconstruction of the rule-triggering-system criterion of [ZH90]
/// (Zhou & Hsu, "A theory for rule triggering systems"): accept only rule
/// sets whose triggering graph is acyclic AND whose rules pairwise
/// commute. [HH91] was shown to subsume [ZH90] (Section 9), which this
/// reconstruction preserves: ZH90-accepted ⇒ HH91-accepted.
struct ZH90Report {
  bool accepted = false;
  bool triggering_graph_acyclic = false;
  bool all_pairs_commute = false;
};

class ZH90Analyzer {
 public:
  static ZH90Report Analyze(const CommutativityAnalyzer& commutativity);
};

}  // namespace starburst

#endif  // STARBURST_BASELINE_ZH90_H_
