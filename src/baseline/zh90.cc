#include "baseline/zh90.h"

#include "analysis/triggering_graph.h"

namespace starburst {

ZH90Report ZH90Analyzer::Analyze(const CommutativityAnalyzer& commutativity) {
  ZH90Report report;
  TriggeringGraph graph(commutativity.prelim());
  report.triggering_graph_acyclic = graph.IsAcyclic();
  report.all_pairs_commute =
      HH91Analyzer::Analyze(commutativity, /*max_pairs=*/0).accepted;
  report.accepted =
      report.triggering_graph_acyclic && report.all_pairs_commute;
  return report;
}

}  // namespace starburst
