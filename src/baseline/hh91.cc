#include "baseline/hh91.h"

namespace starburst {

HH91Report HH91Analyzer::Analyze(const CommutativityAnalyzer& commutativity,
                                 int max_pairs) {
  HH91Report report;
  report.accepted = true;
  int n = commutativity.prelim().num_rules();
  for (RuleIndex i = 0; i < n; ++i) {
    for (RuleIndex j = i + 1; j < n; ++j) {
      if (commutativity.Commute(i, j)) continue;
      report.accepted = false;
      if (max_pairs < 0 ||
          static_cast<int>(report.noncommuting_pairs.size()) < max_pairs) {
        report.noncommuting_pairs.emplace_back(i, j);
      } else {
        return report;
      }
    }
  }
  return report;
}

}  // namespace starburst
