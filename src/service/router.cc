#include "service/router.h"

#include <chrono>
#include <cstdio>
#include <mutex>
#include <utility>
#include <vector>

#include "analysis/json_report.h"
#include "analysis/witness.h"
#include "rules/processor.h"
#include "service/admin.h"

namespace starburst {
namespace service {
namespace {

/// Latency histogram edges in microseconds (powers-of-ish up to 1s).
const std::vector<int64_t>& LatencyBoundsUs() {
  static const std::vector<int64_t> bounds = {
      100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000,
      250000, 500000, 1000000};
  return bounds;
}

/// Splits a request body into statements: one per non-empty line, with
/// `--` comment lines skipped (the same line discipline as the corpus
/// `.rules` data sections).
std::vector<std::string> BodyStatements(const std::string& body) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= body.size()) {
    size_t end = body.find('\n', start);
    if (end == std::string::npos) end = body.size();
    std::string line = body.substr(start, end - start);
    start = end + 1;
    while (!line.empty() && (line.back() == '\r' || line.back() == ' '))
      line.pop_back();
    size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    if (line.compare(first, 2, "--") == 0) continue;
    out.push_back(line.substr(first));
  }
  return out;
}

std::string HexFingerprint(const Hash128& fp) {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(fp.hi),
                static_cast<unsigned long long>(fp.lo));
  return std::string(buf);
}

HttpResponse JsonResponse(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  return response;
}

HttpResponse ErrorResponse(const Status& status) {
  return JsonResponse(HttpStatusFor(status),
                      ErrorJson(ErrorCodeFor(status), status.message()));
}

HttpResponse NotFoundResponse(const std::string& what) {
  return JsonResponse(404, ErrorJson("not_found", what));
}

HttpResponse MethodNotAllowed(const std::string& method,
                              const std::string& path) {
  return JsonResponse(
      405, ErrorJson("method_not_allowed", method + " not allowed on " + path));
}

std::string TenantInfoJson(const TenantInfo& info) {
  return "{\"name\":\"" + JsonEscape(info.name) +
         "\",\"rules\":" + std::to_string(info.num_rules) +
         ",\"tables\":" + std::to_string(info.num_tables) + "}";
}

/// Parses a non-negative integer query parameter; falls back to
/// `fallback` when absent, fails on garbage.
Result<long> IntParam(const HttpRequest& request, const char* key,
                      long fallback) {
  const std::string* raw = request.QueryParam(key);
  if (raw == nullptr) return fallback;
  if (raw->empty()) {
    return Status::InvalidArgument(std::string("empty value for ?") + key);
  }
  long value = 0;
  for (char c : *raw) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(std::string("bad integer for ?") + key +
                                     ": '" + *raw + "'");
    }
    value = value * 10 + (c - '0');
    if (value > 1000000000L) {
      return Status::InvalidArgument(std::string("value too large for ?") +
                                     key);
    }
  }
  return value;
}

}  // namespace

int HttpStatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
      // Duplicate tenant registration is a conflict, not a malformed
      // request (the registry tags it with "already loaded").
      return status.message().find("already loaded") != std::string::npos
                 ? 409
                 : 400;
    case StatusCode::kParseError:
    case StatusCode::kSemanticError:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kExecutionError:
    case StatusCode::kLimitExceeded:
      return 422;
    case StatusCode::kInternal:
      return 500;
  }
  return 500;
}

std::string ErrorCodeFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return status.message().find("already loaded") != std::string::npos
                 ? "conflict"
                 : "invalid_argument";
    case StatusCode::kParseError:
      return "parse_error";
    case StatusCode::kSemanticError:
      return "semantic_error";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kExecutionError:
      return "execution_error";
    case StatusCode::kLimitExceeded:
      return "limit_exceeded";
    case StatusCode::kInternal:
      return "internal";
  }
  return "internal";
}

std::string ErrorJson(const std::string& code, const std::string& message) {
  return "{\"error\":{\"code\":\"" + JsonEscape(code) + "\",\"message\":\"" +
         JsonEscape(message) + "\"}}";
}

HttpResponse ServiceRouter::Handle(const HttpRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  metrics::GetCounter("service.requests")->Add(1);
  HttpResponse response = Dispatch(request);
  if (response.status >= 400) {
    metrics::GetCounter("service.errors")->Add(1);
  }
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  metrics::GetHistogram("service.request_us", LatencyBoundsUs())
      ->Record(elapsed.count());
  return response;
}

HttpResponse ServiceRouter::Dispatch(const HttpRequest& request) {
  const std::string& path = request.path;
  if (path == "/healthz") {
    if (request.method != "GET") return MethodNotAllowed(request.method, path);
    return JsonResponse(200, HealthJson(*registry_));
  }
  if (path == "/stats") {
    if (request.method != "GET") return MethodNotAllowed(request.method, path);
    const std::string* section = request.QueryParam("section");
    return JsonResponse(200, StatsJson(*registry_, section ? *section : ""));
  }
  if (path == "/v1/tenants") return HandleTenantCollection(request);
  const std::string prefix = "/v1/tenants/";
  if (path.compare(0, prefix.size(), prefix) == 0) {
    std::string rest = path.substr(prefix.size());
    size_t slash = rest.find('/');
    if (slash == std::string::npos) return HandleTenant(request, rest);
    std::string name = rest.substr(0, slash);
    std::string verb = rest.substr(slash + 1);
    if (name.empty() || verb.empty() || verb.find('/') != std::string::npos) {
      return NotFoundResponse("no such endpoint: " + path);
    }
    return HandleTenantVerb(request, name, verb);
  }
  return NotFoundResponse("no such endpoint: " + path);
}

HttpResponse ServiceRouter::HandleTenantCollection(const HttpRequest& request) {
  if (request.method != "GET") {
    return MethodNotAllowed(request.method, request.path);
  }
  std::string body = "{\"tenants\":[";
  bool first = true;
  for (const TenantInfo& info : registry_->List()) {
    if (!first) body += ",";
    first = false;
    body += TenantInfoJson(info);
  }
  body += "]}";
  return JsonResponse(200, body);
}

HttpResponse ServiceRouter::HandleTenant(const HttpRequest& request,
                                         const std::string& name) {
  if (request.method == "POST" || request.method == "PUT") {
    Result<TenantInfo> info = registry_->Load(name, request.body);
    if (!info.ok()) return ErrorResponse(info.status());
    return JsonResponse(201, TenantInfoJson(info.value()));
  }
  if (request.method == "DELETE") {
    Status status = registry_->Unload(name);
    if (!status.ok()) return ErrorResponse(status);
    return JsonResponse(200, "{\"unloaded\":\"" + JsonEscape(name) + "\"}");
  }
  if (request.method == "GET") {
    std::shared_ptr<Tenant> tenant = registry_->Find(name);
    if (tenant == nullptr) return NotFoundResponse("no tenant named '" + name +
                                                   "'");
    TenantInfo info;
    info.name = tenant->name();
    info.num_rules = tenant->catalog().num_rules();
    info.num_tables = tenant->catalog().schema().num_tables();
    return JsonResponse(200, TenantInfoJson(info));
  }
  return MethodNotAllowed(request.method, request.path);
}

HttpResponse ServiceRouter::HandleTenantVerb(const HttpRequest& request,
                                             const std::string& name,
                                             const std::string& verb) {
  if (request.method != "POST") {
    return MethodNotAllowed(request.method, request.path);
  }
  std::shared_ptr<Tenant> tenant = registry_->Find(name);
  if (tenant == nullptr) {
    return NotFoundResponse("no tenant named '" + name + "'");
  }

  // Per-tenant serialization: one tenant's requests execute in lock-
  // acquisition order; other tenants' strands are independent. The
  // queue-depth gauge counts requests waiting for (not holding) a strand.
  metrics::Gauge* queue_depth = metrics::GetGauge("service.queue_depth");
  queue_depth->Add(1);
  std::unique_lock<std::mutex> strand(tenant->strand());
  queue_depth->Add(-1);
  tenant->requests()->Add(1);

  if (verb == "analyze") {
    Result<long> max_violations = IntParam(request, "max_violations", -1);
    if (!max_violations.ok()) return ErrorResponse(max_violations.status());
    FullReport report =
        tenant->analyzer().AnalyzeAll(
            static_cast<int>(max_violations.value()));
    // The determinism contract: these are the exact batch-CLI
    // FullReportToJson bytes, independent of concurrent load elsewhere.
    return JsonResponse(200, FullReportToJson(report, tenant->catalog()));
  }

  if (verb == "certify") {
    const std::string* kind = request.QueryParam("kind");
    if (kind == nullptr) {
      return ErrorResponse(Status::InvalidArgument("missing ?kind"));
    }
    if (*kind == "quiescent") {
      const std::string* rule = request.QueryParam("rule");
      if (rule == nullptr) {
        return ErrorResponse(
            Status::InvalidArgument("kind=quiescent needs ?rule"));
      }
      if (tenant->catalog().FindRule(*rule) < 0) {
        return ErrorResponse(Status::NotFound("no rule named '" + *rule +
                                              "'"));
      }
      tenant->analyzer().CertifyQuiescent(*rule);
      return JsonResponse(200, "{\"certified\":\"quiescent\",\"rule\":\"" +
                                   JsonEscape(*rule) + "\"}");
    }
    if (*kind == "commute") {
      const std::string* a = request.QueryParam("a");
      const std::string* b = request.QueryParam("b");
      if (a == nullptr || b == nullptr) {
        return ErrorResponse(
            Status::InvalidArgument("kind=commute needs ?a and ?b"));
      }
      if (tenant->catalog().FindRule(*a) < 0) {
        return ErrorResponse(Status::NotFound("no rule named '" + *a + "'"));
      }
      if (tenant->catalog().FindRule(*b) < 0) {
        return ErrorResponse(Status::NotFound("no rule named '" + *b + "'"));
      }
      tenant->analyzer().CertifyCommute(*a, *b);
      return JsonResponse(200, "{\"certified\":\"commute\",\"a\":\"" +
                                   JsonEscape(*a) + "\",\"b\":\"" +
                                   JsonEscape(*b) + "\"}");
    }
    return ErrorResponse(Status::InvalidArgument(
        "unknown ?kind '" + *kind + "' (quiescent|commute)"));
  }

  if (verb == "transition") {
    std::vector<std::string> statements = BodyStatements(request.body);
    if (statements.empty()) {
      return ErrorResponse(
          Status::InvalidArgument("empty transition body (one SQL statement "
                                  "per line)"));
    }
    Result<long> commit = IntParam(request, "commit", 1);
    if (!commit.ok()) return ErrorResponse(commit.status());
    Result<long> max_steps = IntParam(request, "max_steps", 10000);
    if (!max_steps.ok()) return ErrorResponse(max_steps.status());

    // Statements run against a copy so a mid-transaction error (which
    // leaves the processor's transaction open with partial effects) can
    // never corrupt the tenant's committed database.
    Database work = tenant->db();
    ProcessorOptions options;
    options.max_steps = static_cast<int>(max_steps.value());
    RuleProcessor processor(&work, &tenant->catalog(), options);
    for (const std::string& statement : statements) {
      Result<ExecOutcome> outcome = processor.ExecuteUserStatement(statement);
      if (!outcome.ok()) return ErrorResponse(outcome.status());
    }
    Result<ProcessingResult> asserted = processor.AssertRules();
    if (!asserted.ok()) return ErrorResponse(asserted.status());
    const ProcessingResult& result = asserted.value();
    processor.Commit();

    const bool committed = commit.value() != 0;
    std::string body = "{\"terminated\":";
    body += result.terminated ? "true" : "false";
    body += ",\"rolled_back\":";
    body += result.rolled_back ? "true" : "false";
    body += ",\"steps\":" + std::to_string(result.steps);
    body += ",\"fired\":[";
    for (size_t i = 0; i < result.considered.size(); ++i) {
      if (i > 0) body += ",";
      body += "\"" +
              JsonEscape(tenant->catalog().rule(result.considered[i]).name) +
              "\"";
    }
    body += "],\"observables\":" + std::to_string(result.observables.size());
    body += ",\"fingerprint\":\"" + HexFingerprint(work.ContentFingerprint()) +
            "\"";
    body += ",\"committed\":";
    body += committed ? "true" : "false";
    body += "}";
    if (committed) tenant->db() = std::move(work);
    return JsonResponse(200, body);
  }

  if (verb == "witness") {
    std::vector<std::string> statements = BodyStatements(request.body);
    if (statements.empty()) {
      return ErrorResponse(
          Status::InvalidArgument("empty witness body (one SQL statement per "
                                  "line)"));
    }
    Result<long> max_depth = IntParam(request, "max_depth", 64);
    if (!max_depth.ok()) return ErrorResponse(max_depth.status());
    Result<long> max_steps = IntParam(request, "max_steps", 200000);
    if (!max_steps.ok()) return ErrorResponse(max_steps.status());
    ExplorerOptions explorer_options;
    explorer_options.max_depth = static_cast<int>(max_depth.value());
    explorer_options.max_total_steps = max_steps.value();
    WitnessOptions witness_options;
    witness_options.max_depth = static_cast<int>(max_depth.value());
    witness_options.max_total_steps = max_steps.value();
    Result<WitnessExtraction> extraction = ExtractWitnessAfterStatements(
        tenant->catalog(), tenant->db(), statements, explorer_options,
        witness_options);
    if (!extraction.ok()) return ErrorResponse(extraction.status());
    return JsonResponse(
        200, WitnessExtractionToJson(extraction.value(), tenant->catalog()));
  }

  return NotFoundResponse("no such tenant endpoint: " + verb);
}

}  // namespace service
}  // namespace starburst
