#include "service/admin.h"

#include "common/metrics.h"
#include "common/thread_pool.h"

namespace starburst {
namespace service {
namespace {

std::string ServiceObject(const TenantRegistry& registry) {
  return "{\"tenants\":" + std::to_string(registry.size()) +
         ",\"pool_threads\":" +
         std::to_string(ThreadPool::Default().num_threads()) + "}";
}

}  // namespace

std::string StatsJson(const TenantRegistry& registry,
                      const std::string& section) {
  if (section == "service") return ServiceObject(registry);
  metrics::Snapshot snapshot = metrics::Collect();
  if (section == "counters") return metrics::CountersToJson(snapshot);
  // Splice the service object in front of MetricsToJson's three sections.
  std::string metrics_json = metrics::MetricsToJson(snapshot);
  return "{\"service\":" + ServiceObject(registry) + "," +
         metrics_json.substr(1);
}

std::string HealthJson(const TenantRegistry& registry) {
  return "{\"status\":\"ok\",\"tenants\":" + std::to_string(registry.size()) +
         "}";
}

}  // namespace service
}  // namespace starburst
