#ifndef STARBURST_SERVICE_ROUTER_H_
#define STARBURST_SERVICE_ROUTER_H_

#include <string>

#include "common/status.h"
#include "service/http.h"
#include "service/tenant.h"

namespace starburst {
namespace service {

/// Maps a Status to the wire error code: the HTTP status plus the
/// snake_case code string that appears in the error body (documented in
/// docs/service.md). A duplicate-tenant InvalidArgument maps to 409.
int HttpStatusFor(const Status& status);
std::string ErrorCodeFor(const Status& status);

/// The error body: {"error":{"code":"...","message":"..."}}.
std::string ErrorJson(const std::string& code, const std::string& message);

/// Routes one parsed request to the tenant registry and the analysis
/// machinery. Thread-safe: may be called concurrently from many connection
/// threads. Tenant endpoints serialize on the tenant's strand (requests
/// for one tenant are ordered; different tenants run in parallel); admin
/// endpoints never take a strand.
///
/// Endpoints (wire contract pinned by docs/service.md and service_test):
///   GET    /healthz                      liveness
///   GET    /stats[?section=...]          metrics snapshot
///   GET    /v1/tenants                   sorted tenant list
///   POST   /v1/tenants/{name}            load catalog (body = .rules script)
///   GET    /v1/tenants/{name}            tenant info
///   DELETE /v1/tenants/{name}            unload
///   POST   /v1/tenants/{name}/transition submit statements, run to
///                                        quiescence (?commit=0 to discard)
///   POST   /v1/tenants/{name}/analyze    full analysis; the body is the
///                                        batch FullReportToJson bytes
///   POST   /v1/tenants/{name}/certify    ?kind=quiescent&rule=R |
///                                        ?kind=commute&a=R1&b=R2
///   POST   /v1/tenants/{name}/witness    divergence witness for the body's
///                                        statements
class ServiceRouter {
 public:
  explicit ServiceRouter(TenantRegistry* registry) : registry_(registry) {}

  HttpResponse Handle(const HttpRequest& request);

 private:
  HttpResponse Dispatch(const HttpRequest& request);
  HttpResponse HandleTenantCollection(const HttpRequest& request);
  HttpResponse HandleTenant(const HttpRequest& request,
                            const std::string& name);
  HttpResponse HandleTenantVerb(const HttpRequest& request,
                                const std::string& name,
                                const std::string& verb);

  TenantRegistry* registry_;
};

}  // namespace service
}  // namespace starburst

#endif  // STARBURST_SERVICE_ROUTER_H_
