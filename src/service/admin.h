#ifndef STARBURST_SERVICE_ADMIN_H_
#define STARBURST_SERVICE_ADMIN_H_

#include <string>

#include "service/tenant.h"

namespace starburst {
namespace service {

/// The /stats body:
///   {"service":{"tenants":N,"pool_threads":T},
///    "counters":{...},"gauges":{...},"histograms":{...}}
/// with the three metric sections spliced verbatim from
/// metrics::MetricsToJson (each sorted by name). `section` narrows the
/// body: "counters" yields metrics::CountersToJson(snapshot) alone — the
/// thread-count- and pool-size-deterministic slice the byte-identity tests
/// compare — and "service" yields just the service object; empty means
/// everything.
std::string StatsJson(const TenantRegistry& registry,
                      const std::string& section = "");

/// The /healthz body: {"status":"ok","tenants":N}.
std::string HealthJson(const TenantRegistry& registry);

}  // namespace service
}  // namespace starburst

#endif  // STARBURST_SERVICE_ADMIN_H_
