#ifndef STARBURST_SERVICE_HTTP_H_
#define STARBURST_SERVICE_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace starburst {
namespace service {

/// HTTP/1.1 framing for the `ruled` daemon and its clients. Deliberately a
/// subset: request-line + headers + Content-Length bodies, keep-alive and
/// pipelining, no chunked transfer encoding, no TLS. The parser is
/// incremental (feed bytes as they arrive from a socket) and is shared by
/// the server connection loop, the blocking client used by `rule_load` and
/// `stats_report --from-url`, and the unit tests, so both directions of the
/// wire protocol are exercised by one implementation.

/// One parsed request. Header names are lower-cased; the query string is
/// split and percent-decoded.
struct HttpRequest {
  std::string method;  // as sent, upper-case by convention
  std::string target;  // raw request target, e.g. "/v1/tenants/a?commit=1"
  std::string path;    // target before '?', percent-decoded
  std::vector<std::pair<std::string, std::string>> query;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// False when the client sent `Connection: close` (or HTTP/1.0 without
  /// `Connection: keep-alive`).
  bool keep_alive = true;

  /// First value for `key` (exact match, already decoded); null if absent.
  const std::string* QueryParam(std::string_view key) const;
  /// First value for `name` (case-insensitive); null if absent.
  const std::string* Header(std::string_view name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Whether the connection stays open after this response; serialized as
  /// the Connection header.
  bool keep_alive = true;
};

/// Standard reason phrase for the status codes the service emits
/// ("Not Found", ...); "Unknown" otherwise.
const char* HttpReasonPhrase(int status);

/// Percent-decodes `%XX` sequences and '+' (as space). Invalid escapes are
/// kept verbatim.
std::string PercentDecode(std::string_view s);

/// Incremental request parser. Feed() appends bytes; once it returns
/// kComplete, read request() and call Consume() to drop the parsed request
/// and resume on any pipelined remainder. kError is terminal for the
/// connection (error() says why; the server answers 400 and closes).
class HttpRequestParser {
 public:
  enum class State { kNeedMore, kComplete, kError };

  /// Hard limits; exceeding them is a parse error (the server answers 431
  /// or 413).
  static constexpr size_t kMaxHeaderBytes = 64 * 1024;
  static constexpr size_t kMaxBodyBytes = 16 * 1024 * 1024;

  State Feed(const char* data, size_t n);
  State state() const { return state_; }
  const HttpRequest& request() const { return request_; }
  const std::string& error() const { return error_; }
  /// HTTP status to answer when state() == kError (400, 413, or 431).
  int error_status() const { return error_status_; }

  /// Drops the completed request, keeps pipelined bytes, and re-parses
  /// them (state() may be kComplete again immediately).
  void Consume();

  /// True when no unparsed bytes are buffered (the connection is between
  /// requests — safe to close on drain).
  bool Empty() const { return buffer_.empty(); }

 private:
  State Parse();
  State SetError(int status, std::string message);

  std::string buffer_;
  HttpRequest request_;
  std::string error_;
  int error_status_ = 400;
  State state_ = State::kNeedMore;
};

/// Incremental response parser (client side): status line + headers +
/// Content-Length body.
class HttpResponseParser {
 public:
  enum class State { kNeedMore, kComplete, kError };

  State Feed(const char* data, size_t n);
  State state() const { return state_; }
  const HttpResponse& response() const { return response_; }
  const std::string& error() const { return error_; }
  void Consume();

 private:
  State Parse();
  State SetError(std::string message);

  std::string buffer_;
  HttpResponse response_;
  std::string error_;
  State state_ = State::kNeedMore;
};

/// Serializes a response with Content-Length and Connection headers.
std::string SerializeResponse(const HttpResponse& response);

/// Serializes a request with Host, Content-Length, and Connection headers.
std::string SerializeRequest(const std::string& method,
                             const std::string& target,
                             const std::string& body, const std::string& host,
                             bool keep_alive = true);

/// A parsed `http://host:port/path` URL (the only scheme supported).
struct ParsedUrl {
  std::string host;
  int port = 80;
  std::string target;  // path + query, at least "/"
};
Result<ParsedUrl> ParseUrl(const std::string& url);

/// A blocking keep-alive client connection over a TCP socket. Used by the
/// load generator (one per driver connection) and the one-shot HttpFetch.
/// Not thread-safe; move-only.
class HttpClientConnection {
 public:
  static Result<HttpClientConnection> Connect(const std::string& host,
                                              int port,
                                              int timeout_ms = 5000);

  HttpClientConnection(HttpClientConnection&& other) noexcept;
  HttpClientConnection& operator=(HttpClientConnection&& other) noexcept;
  HttpClientConnection(const HttpClientConnection&) = delete;
  HttpClientConnection& operator=(const HttpClientConnection&) = delete;
  ~HttpClientConnection();

  /// Sends one request and reads one response. An ExecutionError Status
  /// means the transport failed (closed socket, timeout) — distinct from
  /// an HTTP error status, which is a successful round trip.
  Result<HttpResponse> RoundTrip(const std::string& method,
                                 const std::string& target,
                                 const std::string& body = "");

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  HttpClientConnection(int fd, std::string host)
      : fd_(fd), host_(std::move(host)) {}

  int fd_ = -1;
  std::string host_;
  HttpResponseParser parser_;
};

/// One-shot GET: connect, request, read, close.
Result<HttpResponse> HttpFetch(const std::string& url, int timeout_ms = 5000);

}  // namespace service
}  // namespace starburst

#endif  // STARBURST_SERVICE_HTTP_H_
