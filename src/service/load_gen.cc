#include "service/load_gen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "analysis/analyzer.h"
#include "catalog/catalog.h"
#include "service/http.h"
#include "testing/oracles.h"
#include "workload/random_gen.h"

namespace starburst {
namespace service {
namespace {

/// What one simulated user needs to synthesize requests: its tenant and
/// the tenant's table shapes (the generator emits int-only columns).
struct TenantShape {
  std::string name;
  std::vector<std::string> table_names;
  std::vector<int> table_columns;
};

std::string InsertStatement(const TenantShape& shape, SplitMix64* rng) {
  int t = rng->Below(static_cast<int>(shape.table_names.size()));
  std::string stmt = "insert into " + shape.table_names[t] + " values (";
  for (int c = 0; c < shape.table_columns[t]; ++c) {
    if (c > 0) stmt += ", ";
    stmt += std::to_string(rng->Below(8));
  }
  stmt += ")";
  return stmt;
}

struct ThreadStats {
  int64_t requests = 0;
  int64_t http_errors = 0;
  int64_t transport_errors = 0;
  std::vector<uint32_t> latency_us;
};

double PercentileMs(const std::vector<uint32_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  size_t index = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  if (index >= sorted.size()) index = sorted.size() - 1;
  return static_cast<double>(sorted[index]) / 1000.0;
}

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return std::string(buf);
}

}  // namespace

Result<LoadGenReport> RunLoadGen(const LoadGenOptions& options) {
  if (options.users < 1 || options.connections < 1) {
    return Status::InvalidArgument("need at least one user and connection");
  }
  if (options.duration_seconds <= 0) {
    return Status::InvalidArgument("duration must be positive");
  }

  // Build the synthetic tenants (or discover the existing ones) over a
  // setup connection.
  STARBURST_ASSIGN_OR_RETURN(
      HttpClientConnection setup,
      HttpClientConnection::Connect(options.host, options.port));
  std::vector<TenantShape> shapes;
  for (int i = 0; i < options.tenants; ++i) {
    RandomRuleSetParams params;
    params.num_tables = 3;
    params.columns_per_table = 2;
    params.num_rules = 6;
    // Per tenant, take the first seed whose catalog the Section 5 analysis
    // accepts: a provably terminating catalog keeps every transition
    // cascade short, so request cost is bounded by construction — a
    // non-terminating random catalog would otherwise burn max_steps (with
    // per-step cost growing as its tables fill) on every insert and turn
    // the tail latency into a property of the dice, not the server.
    const uint64_t base = options.seed + static_cast<uint64_t>(i) * 7919;
    GeneratedRuleSet set;
    std::string script;
    for (uint64_t attempt = 0; attempt < 64 && script.empty(); ++attempt) {
      params.seed = base + attempt;
      set = RandomRuleSetGenerator::Generate(params);
      std::string candidate = fuzzing::RuleSetToScript(set);
      Result<Analyzer> analyzer =
          Analyzer::Create(set.schema.get(), std::move(set.rules));
      if (!analyzer.ok()) continue;
      if (analyzer.value().AnalyzeAll().termination.guaranteed) {
        script = std::move(candidate);
      }
    }
    if (script.empty()) {
      return Status::ExecutionError(
          "no terminating random catalog found for tenant " +
          std::to_string(i) + " (seed " + std::to_string(base) + ")");
    }
    TenantShape shape;
    shape.name = "load-" + std::to_string(i);
    for (const TableDef& table : set.schema->tables()) {
      shape.table_names.push_back(table.name());
      shape.table_columns.push_back(table.num_columns());
    }
    STARBURST_ASSIGN_OR_RETURN(
        HttpResponse response,
        setup.RoundTrip("POST", "/v1/tenants/" + shape.name, script));
    // 409 = already loaded from a previous run against the same server;
    // the catalog for a given (seed, index) is identical, so reuse it.
    if (response.status != 201 && response.status != 409) {
      return Status::ExecutionError("loading tenant " + shape.name +
                                    " failed: HTTP " +
                                    std::to_string(response.status) + " " +
                                    response.body);
    }
    shapes.push_back(std::move(shape));
  }
  if (shapes.empty()) {
    return Status::InvalidArgument(
        "tenants=0 not supported by the driver: nothing to send traffic to");
  }

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(
                                options.duration_seconds));
  const auto start = std::chrono::steady_clock::now();

  std::vector<ThreadStats> stats(static_cast<size_t>(options.connections));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(options.connections));
  for (int c = 0; c < options.connections; ++c) {
    threads.emplace_back([&, c] {
      ThreadStats& local = stats[static_cast<size_t>(c)];
      // The users this thread drives: u = c, c + C, c + 2C, ... Each user
      // keeps its own deterministic request stream.
      std::vector<SplitMix64> rngs;
      for (int u = c; u < options.users; u += options.connections) {
        rngs.emplace_back(options.seed ^ (0x9e3779b97f4a7c15ULL *
                                          static_cast<uint64_t>(u + 1)));
      }
      if (rngs.empty()) return;

      Result<HttpClientConnection> conn =
          HttpClientConnection::Connect(options.host, options.port);
      size_t turn = 0;
      while (std::chrono::steady_clock::now() < deadline) {
        if (!conn.ok() || !conn.value().connected()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          conn = HttpClientConnection::Connect(options.host, options.port);
          if (!conn.ok()) {
            ++local.transport_errors;
            continue;
          }
        }
        SplitMix64& rng = rngs[turn % rngs.size()];
        const uint64_t user = static_cast<uint64_t>(c) +
                              static_cast<uint64_t>(turn % rngs.size()) *
                                  static_cast<uint64_t>(options.connections);
        ++turn;
        const TenantShape& shape =
            shapes[static_cast<size_t>(user % shapes.size())];

        std::string method = "POST";
        std::string target;
        std::string body;
        double draw = (rng.Next() >> 11) * (1.0 / 9007199254740992.0);
        if (draw < options.stats_fraction) {
          method = "GET";
          target = rng.Chance(0.5) ? "/stats?section=service" : "/healthz";
        } else if (draw < options.stats_fraction + options.analyze_fraction) {
          target = "/v1/tenants/" + shape.name + "/analyze";
        } else {
          // Transitions run with commit=0 so a long run does not grow the
          // tenant databases without bound (a commit=1 sprinkle keeps the
          // write-back path hot).
          bool commit = rng.Chance(0.01);
          target = "/v1/tenants/" + shape.name +
                   (commit ? "/transition" : "/transition?commit=0");
          body = InsertStatement(shape, &rng);
        }

        const auto t0 = std::chrono::steady_clock::now();
        Result<HttpResponse> response =
            conn.value().RoundTrip(method, target, body);
        const auto us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
        ++local.requests;
        if (!response.ok()) {
          ++local.transport_errors;
          conn.value().Close();
          continue;
        }
        if (response.value().status >= 400) ++local.http_errors;
        local.latency_us.push_back(static_cast<uint32_t>(
            std::min<int64_t>(us, 0xffffffffLL)));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  if (options.cleanup) {
    for (const TenantShape& shape : shapes) {
      // Best effort; the server may already be shutting down.
      Result<HttpResponse> ignored =
          setup.RoundTrip("DELETE", "/v1/tenants/" + shape.name);
      (void)ignored;
    }
  }

  LoadGenReport report;
  report.users = options.users;
  report.connections = options.connections;
  report.tenants = static_cast<int>(shapes.size());
  report.seconds = seconds;
  std::vector<uint32_t> all;
  for (const ThreadStats& s : stats) {
    report.requests += s.requests;
    report.http_errors += s.http_errors;
    report.transport_errors += s.transport_errors;
    all.insert(all.end(), s.latency_us.begin(), s.latency_us.end());
  }
  std::sort(all.begin(), all.end());
  report.requests_per_second =
      seconds > 0 ? static_cast<double>(report.requests) / seconds : 0;
  report.p50_ms = PercentileMs(all, 0.50);
  report.p90_ms = PercentileMs(all, 0.90);
  report.p99_ms = PercentileMs(all, 0.99);
  report.max_ms = all.empty() ? 0 : static_cast<double>(all.back()) / 1000.0;
  return report;
}

std::string LoadGenReportToJson(const LoadGenReport& report) {
  std::string json = "{";
  json += "\"users\":" + std::to_string(report.users);
  json += ",\"connections\":" + std::to_string(report.connections);
  json += ",\"tenants\":" + std::to_string(report.tenants);
  json += ",\"seconds\":" + FormatDouble(report.seconds);
  json += ",\"requests\":" + std::to_string(report.requests);
  json += ",\"http_errors\":" + std::to_string(report.http_errors);
  json += ",\"transport_errors\":" + std::to_string(report.transport_errors);
  json += ",\"requests_per_second\":" +
          FormatDouble(report.requests_per_second);
  json += ",\"p50_ms\":" + FormatDouble(report.p50_ms);
  json += ",\"p90_ms\":" + FormatDouble(report.p90_ms);
  json += ",\"p99_ms\":" + FormatDouble(report.p99_ms);
  json += ",\"max_ms\":" + FormatDouble(report.max_ms);
  json += "}";
  return json;
}

}  // namespace service
}  // namespace starburst
