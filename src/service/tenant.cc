#include "service/tenant.h"

#include <algorithm>
#include <utility>

#include "testing/oracles.h"

namespace starburst {
namespace service {
namespace {

bool ValidTenantName(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

TenantInfo InfoFor(const Tenant& tenant) {
  TenantInfo info;
  info.name = tenant.name();
  info.num_rules = tenant.catalog().num_rules();
  info.num_tables = tenant.catalog().schema().num_tables();
  return info;
}

}  // namespace

Result<TenantInfo> TenantRegistry::Load(const std::string& name,
                                        const std::string& script) {
  if (!ValidTenantName(name)) {
    return Status::InvalidArgument(
        "tenant name must match [A-Za-z0-9_-]{1,64}: '" + name + "'");
  }
  // Parse and compile before touching the map, so a bad catalog leaves the
  // registry unchanged and other tenants unaffected.
  STARBURST_ASSIGN_OR_RETURN(GeneratedRuleSet set,
                             fuzzing::ParseRuleSetScript(script));
  STARBURST_ASSIGN_OR_RETURN(
      Analyzer analyzer,
      Analyzer::Create(set.schema.get(), std::move(set.rules)));
  std::shared_ptr<Tenant> tenant(
      new Tenant(name, std::move(set.schema), std::move(analyzer)));
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = tenants_.emplace(name, tenant);
    (void)it;
    if (!inserted) {
      return Status::InvalidArgument("tenant '" + name + "' already loaded");
    }
    metrics::GetGauge("service.tenants")
        ->Set(static_cast<int64_t>(tenants_.size()));
  }
  metrics::GetCounter("service.tenant_loads")->Add(1);
  return InfoFor(*tenant);
}

Status TenantRegistry::Unload(const std::string& name) {
  std::shared_ptr<Tenant> victim;  // destroyed outside the lock
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(name);
    if (it == tenants_.end()) {
      return Status::NotFound("no tenant named '" + name + "'");
    }
    victim = std::move(it->second);
    tenants_.erase(it);
    metrics::GetGauge("service.tenants")
        ->Set(static_cast<int64_t>(tenants_.size()));
  }
  metrics::GetCounter("service.tenant_unloads")->Add(1);
  return Status::OK();
}

std::shared_ptr<Tenant> TenantRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second;
}

std::vector<TenantInfo> TenantRegistry::List() const {
  std::vector<TenantInfo> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) out.push_back(InfoFor(*tenant));
  return out;  // std::map iteration is already name-sorted
}

int TenantRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(tenants_.size());
}

}  // namespace service
}  // namespace starburst
