#ifndef STARBURST_SERVICE_LOAD_GEN_H_
#define STARBURST_SERVICE_LOAD_GEN_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace starburst {
namespace service {

/// Configuration for the rule_load load generator (tools/rule_load).
///
/// Concurrency model: `users` logical simulated users are multiplexed over
/// `connections` driver threads, each owning one keep-alive TCP connection
/// (user u is driven by thread u % connections). Every user has its own
/// deterministic SplitMix64 request stream seeded from (seed, user index),
/// so two runs with the same options issue the same request mix —
/// timings, of course, differ. 10k users over 64 connections models 10k
/// concurrent sessions without 10k OS threads, which matches how the
/// thread-per-connection server is meant to be fronted.
struct LoadGenOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Logical simulated users (each with an independent request stream).
  int users = 10000;
  /// Driver threads / TCP connections the users are multiplexed over.
  int connections = 64;
  double duration_seconds = 10.0;
  /// Synthetic tenants to load before driving traffic, named
  /// "load-0".."load-N-1" (generated catalogs, seeded per tenant). 0 means
  /// drive whatever tenants the server already has... which must then be
  /// non-empty.
  int tenants = 4;
  /// Request mix (remaining probability mass goes to transitions).
  double analyze_fraction = 0.05;
  double stats_fraction = 0.02;
  uint64_t seed = 1;
  /// Unload the synthetic tenants when done.
  bool cleanup = true;
};

struct LoadGenReport {
  int users = 0;
  int connections = 0;
  int tenants = 0;
  double seconds = 0;
  int64_t requests = 0;
  /// HTTP responses with status >= 400.
  int64_t http_errors = 0;
  /// Transport failures (reconnects); the request is counted as failed,
  /// not retried.
  int64_t transport_errors = 0;
  double requests_per_second = 0;
  double p50_ms = 0;
  double p90_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
};

/// Drives load against a running ruled server and aggregates latency
/// percentiles across all driver threads. Fails if the server is
/// unreachable or a synthetic tenant cannot be loaded.
Result<LoadGenReport> RunLoadGen(const LoadGenOptions& options);

/// Renders the report as the BENCH_service.json entry shape:
///   {"users":...,"connections":...,"tenants":...,"seconds":...,
///    "requests":...,"http_errors":...,"transport_errors":...,
///    "requests_per_second":...,"p50_ms":...,"p90_ms":...,"p99_ms":...,
///    "max_ms":...}
std::string LoadGenReportToJson(const LoadGenReport& report);

}  // namespace service
}  // namespace starburst

#endif  // STARBURST_SERVICE_LOAD_GEN_H_
