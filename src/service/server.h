#ifndef STARBURST_SERVICE_SERVER_H_
#define STARBURST_SERVICE_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "service/router.h"
#include "service/tenant.h"

namespace starburst {
namespace service {

struct ServerOptions {
  /// Port to listen on; 0 asks the kernel for a free port (read it back
  /// from port() — the tests and --port-file use this).
  int port = 7341;
  /// Listen address. The service speaks plaintext HTTP with no
  /// authentication, so the default only accepts loopback clients.
  std::string bind_address = "127.0.0.1";
  /// Concurrent-connection cap; further accepts are answered 503 and
  /// closed. Each connection holds one thread, so this bounds the server's
  /// thread count.
  int max_connections = 256;
  /// How long Stop() waits for in-flight connections before returning
  /// anyway.
  int drain_timeout_ms = 5000;
  /// Socket receive timeout; also the granularity at which idle
  /// connections notice a stop request.
  int poll_interval_ms = 200;
};

/// The ruled daemon's listener: accepts connections, parses requests with
/// HttpRequestParser (keep-alive and pipelining included), and answers
/// them through a ServiceRouter. Thread-per-connection, bounded by
/// max_connections; per-tenant ordering is the router's strand, so the
/// connection layer imposes no cross-connection ordering of its own.
///
/// Lifecycle: Start() binds and spawns the accept loop; RequestStop() (an
/// async-signal-safe nudge) begins a drain — the listener closes, idle
/// keep-alive connections close at their next poll tick, in-flight
/// requests finish; Stop() (or the destructor) then joins everything.
class RuledServer {
 public:
  RuledServer(TenantRegistry* registry, ServerOptions options = {});
  ~RuledServer();

  RuledServer(const RuledServer&) = delete;
  RuledServer& operator=(const RuledServer&) = delete;

  /// Binds, listens, and spawns the accept thread.
  Status Start();

  /// The bound port (after Start(); resolves port 0).
  int port() const { return port_; }

  /// Begins draining. Async-signal-safe: flips the stop flag and closes
  /// the listening socket (wakes the accept loop). Idempotent.
  void RequestStop();

  /// RequestStop() plus joining the accept loop and every connection
  /// thread (up to drain_timeout_ms, after which sockets are shut down
  /// hard). Idempotent; called by the destructor.
  void Stop();

  bool stopping() const {
    return stop_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  TenantRegistry* registry_;
  ServerOptions options_;
  ServiceRouter router_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<int> active_connections_{0};
  std::thread accept_thread_;
  /// Connection threads plus a per-thread done flag so the accept loop can
  /// reap finished ones (joining only threads that have already exited)
  /// instead of accumulating handles for the life of the daemon.
  struct Connection {
    std::thread thread;
    int fd = -1;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::mutex threads_mu_;
  std::vector<Connection> connection_threads_;
  bool started_ = false;
  bool joined_ = false;
};

/// One ruled command-line flag; RuledFlags() is the single source of truth
/// mirrored by `ruled --help` and the flag table in docs/service.md (the
/// doc-consistency test pins both, same discipline as FuzzDriverFlags).
struct RuledFlag {
  const char* name;     // e.g. "--port"
  const char* arg;      // metavariable, "" when the flag takes none
  const char* summary;  // one line, sentence case, no trailing period
};

/// Every flag tools/ruled accepts, in display order.
const std::vector<RuledFlag>& RuledFlags();

/// The daemon's full usage text, rendered from RuledFlags().
std::string RuledUsage();

}  // namespace service
}  // namespace starburst

#endif  // STARBURST_SERVICE_SERVER_H_
