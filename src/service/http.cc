#include "service/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace starburst {
namespace service {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) s.remove_suffix(1);
  return s;
}

/// Finds the end of the header block: the index just past the first blank
/// line. Accepts both CRLF and bare LF line endings. npos when incomplete.
size_t FindHeaderEnd(const std::string& buffer) {
  if (size_t p = buffer.find("\r\n\r\n"); p != std::string::npos) return p + 4;
  if (size_t p = buffer.find("\n\n"); p != std::string::npos) return p + 2;
  return std::string::npos;
}

/// Splits the header block into lines (line endings stripped).
std::vector<std::string_view> HeaderLines(std::string_view block) {
  std::vector<std::string_view> lines;
  size_t start = 0;
  while (start < block.size()) {
    size_t nl = block.find('\n', start);
    if (nl == std::string_view::npos) nl = block.size();
    std::string_view line = block.substr(start, nl - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty()) lines.push_back(line);
    start = nl + 1;
  }
  return lines;
}

/// Parses shared header semantics: lower-cased names, Content-Length,
/// Connection. Returns false on a malformed Content-Length.
bool ParseHeaderFields(const std::vector<std::string_view>& lines,
                       std::vector<std::pair<std::string, std::string>>* headers,
                       long* content_length, bool* keep_alive,
                       bool http10) {
  *content_length = 0;
  for (size_t i = 1; i < lines.size(); ++i) {
    size_t colon = lines[i].find(':');
    if (colon == std::string_view::npos) continue;  // tolerate junk lines
    std::string name = ToLower(Trim(lines[i].substr(0, colon)));
    std::string value(Trim(lines[i].substr(colon + 1)));
    if (name == "content-length") {
      char* end = nullptr;
      long parsed = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || parsed < 0) return false;
      *content_length = parsed;
    } else if (name == "connection") {
      std::string lowered = ToLower(value);
      if (lowered == "close") *keep_alive = false;
      if (lowered == "keep-alive") *keep_alive = true;
    }
    headers->emplace_back(std::move(name), std::move(value));
  }
  if (http10 && *keep_alive) {
    // HTTP/1.0 defaults to close; an explicit keep-alive header above
    // already flipped it back on.
    bool explicit_ka = false;
    for (const auto& [name, value] : *headers) {
      if (name == "connection" && ToLower(value) == "keep-alive") explicit_ka = true;
    }
    *keep_alive = explicit_ka;
  }
  return true;
}

}  // namespace

const std::string* HttpRequest::QueryParam(std::string_view key) const {
  for (const auto& [k, v] : query) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::string* HttpRequest::Header(std::string_view name) const {
  std::string lowered = ToLower(name);
  for (const auto& [k, v] : headers) {
    if (k == lowered) return &v;
  }
  return nullptr;
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Entity";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string PercentDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size() &&
               std::isxdigit(static_cast<unsigned char>(s[i + 1])) &&
               std::isxdigit(static_cast<unsigned char>(s[i + 2]))) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        return std::tolower(static_cast<unsigned char>(c)) - 'a' + 10;
      };
      out += static_cast<char>(hex(s[i + 1]) * 16 + hex(s[i + 2]));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

HttpRequestParser::State HttpRequestParser::SetError(int status,
                                                     std::string message) {
  state_ = State::kError;
  error_status_ = status;
  error_ = std::move(message);
  return state_;
}

HttpRequestParser::State HttpRequestParser::Feed(const char* data, size_t n) {
  if (state_ == State::kError) return state_;
  buffer_.append(data, n);
  if (state_ == State::kComplete) return state_;  // pipelined bytes queue up
  return Parse();
}

HttpRequestParser::State HttpRequestParser::Parse() {
  size_t header_end = FindHeaderEnd(buffer_);
  if (header_end == std::string::npos) {
    if (buffer_.size() > kMaxHeaderBytes) {
      return SetError(431, "header block exceeds limit");
    }
    state_ = State::kNeedMore;
    return state_;
  }
  if (header_end > kMaxHeaderBytes) {
    return SetError(431, "header block exceeds limit");
  }
  std::vector<std::string_view> lines =
      HeaderLines(std::string_view(buffer_).substr(0, header_end));
  if (lines.empty()) return SetError(400, "empty request");

  // Request line: METHOD SP target SP HTTP/x.y
  std::string_view line = lines[0];
  size_t sp1 = line.find(' ');
  size_t sp2 = line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    return SetError(400, "malformed request line");
  }
  HttpRequest req;
  req.method = std::string(line.substr(0, sp1));
  req.target = std::string(Trim(line.substr(sp1 + 1, sp2 - sp1 - 1)));
  std::string_view version = Trim(line.substr(sp2 + 1));
  if (version.rfind("HTTP/", 0) != 0 || req.target.empty() ||
      req.target[0] != '/') {
    return SetError(400, "malformed request line");
  }
  bool http10 = version == "HTTP/1.0";

  size_t qmark = req.target.find('?');
  req.path = PercentDecode(std::string_view(req.target).substr(0, qmark));
  if (qmark != std::string::npos) {
    std::string_view qs = std::string_view(req.target).substr(qmark + 1);
    size_t start = 0;
    while (start <= qs.size()) {
      size_t amp = qs.find('&', start);
      if (amp == std::string_view::npos) amp = qs.size();
      std::string_view pair = qs.substr(start, amp - start);
      if (!pair.empty()) {
        size_t eq = pair.find('=');
        if (eq == std::string_view::npos) {
          req.query.emplace_back(PercentDecode(pair), "");
        } else {
          req.query.emplace_back(PercentDecode(pair.substr(0, eq)),
                                 PercentDecode(pair.substr(eq + 1)));
        }
      }
      if (amp == qs.size()) break;
      start = amp + 1;
    }
  }

  long content_length = 0;
  if (!ParseHeaderFields(lines, &req.headers, &content_length,
                         &req.keep_alive, http10)) {
    return SetError(400, "malformed Content-Length");
  }
  if (content_length > static_cast<long>(kMaxBodyBytes)) {
    return SetError(413, "body exceeds limit");
  }
  if (buffer_.size() < header_end + static_cast<size_t>(content_length)) {
    state_ = State::kNeedMore;
    return state_;
  }
  req.body = buffer_.substr(header_end, static_cast<size_t>(content_length));
  buffer_.erase(0, header_end + static_cast<size_t>(content_length));
  request_ = std::move(req);
  state_ = State::kComplete;
  return state_;
}

void HttpRequestParser::Consume() {
  if (state_ != State::kComplete) return;
  request_ = HttpRequest();
  state_ = State::kNeedMore;
  Parse();  // a pipelined request may already be complete
}

HttpResponseParser::State HttpResponseParser::SetError(std::string message) {
  state_ = State::kError;
  error_ = std::move(message);
  return state_;
}

HttpResponseParser::State HttpResponseParser::Feed(const char* data,
                                                   size_t n) {
  if (state_ == State::kError) return state_;
  buffer_.append(data, n);
  if (state_ == State::kComplete) return state_;
  return Parse();
}

HttpResponseParser::State HttpResponseParser::Parse() {
  size_t header_end = FindHeaderEnd(buffer_);
  if (header_end == std::string::npos) {
    state_ = State::kNeedMore;
    return state_;
  }
  std::vector<std::string_view> lines =
      HeaderLines(std::string_view(buffer_).substr(0, header_end));
  if (lines.empty()) return SetError("empty response");
  std::string_view line = lines[0];
  if (line.rfind("HTTP/", 0) != 0) return SetError("malformed status line");
  size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return SetError("malformed status line");
  HttpResponse resp;
  resp.status = std::atoi(std::string(Trim(line.substr(sp1 + 1))).c_str());
  if (resp.status < 100 || resp.status > 599) {
    return SetError("malformed status code");
  }
  long content_length = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  if (!ParseHeaderFields(lines, &headers, &content_length, &resp.keep_alive,
                         line.rfind("HTTP/1.0", 0) == 0)) {
    return SetError("malformed Content-Length");
  }
  for (const auto& [name, value] : headers) {
    if (name == "content-type") resp.content_type = value;
  }
  if (buffer_.size() < header_end + static_cast<size_t>(content_length)) {
    state_ = State::kNeedMore;
    return state_;
  }
  resp.body = buffer_.substr(header_end, static_cast<size_t>(content_length));
  buffer_.erase(0, header_end + static_cast<size_t>(content_length));
  response_ = std::move(resp);
  state_ = State::kComplete;
  return state_;
}

void HttpResponseParser::Consume() {
  if (state_ != State::kComplete) return;
  response_ = HttpResponse();
  state_ = State::kNeedMore;
  Parse();
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += response.keep_alive ? "Connection: keep-alive\r\n"
                             : "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

std::string SerializeRequest(const std::string& method,
                             const std::string& target,
                             const std::string& body, const std::string& host,
                             bool keep_alive) {
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  out += "Host: " + host + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += body;
  return out;
}

Result<ParsedUrl> ParseUrl(const std::string& url) {
  const std::string scheme = "http://";
  if (url.rfind(scheme, 0) != 0) {
    return Status::InvalidArgument("only http:// URLs are supported: '" +
                                   url + "'");
  }
  std::string rest = url.substr(scheme.size());
  size_t slash = rest.find('/');
  std::string authority = rest.substr(0, slash);
  ParsedUrl parsed;
  parsed.target = slash == std::string::npos ? "/" : rest.substr(slash);
  size_t colon = authority.rfind(':');
  if (colon == std::string::npos) {
    parsed.host = authority;
    parsed.port = 80;
  } else {
    parsed.host = authority.substr(0, colon);
    parsed.port = std::atoi(authority.substr(colon + 1).c_str());
  }
  if (parsed.host.empty() || parsed.port <= 0 || parsed.port > 65535) {
    return Status::InvalidArgument("malformed URL authority: '" + url + "'");
  }
  return parsed;
}

Result<HttpClientConnection> HttpClientConnection::Connect(
    const std::string& host, int port, int timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::ExecutionError(std::string("socket: ") +
                                  std::strerror(errno));
  }
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    int saved = errno;
    ::close(fd);
    return Status::ExecutionError("connect " + host + ":" +
                                  std::to_string(port) + ": " +
                                  std::strerror(saved));
  }
  return HttpClientConnection(fd, host + ":" + std::to_string(port));
}

HttpClientConnection::HttpClientConnection(
    HttpClientConnection&& other) noexcept
    : fd_(other.fd_), host_(std::move(other.host_)),
      parser_(std::move(other.parser_)) {
  other.fd_ = -1;
}

HttpClientConnection& HttpClientConnection::operator=(
    HttpClientConnection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    host_ = std::move(other.host_);
    parser_ = std::move(other.parser_);
    other.fd_ = -1;
  }
  return *this;
}

HttpClientConnection::~HttpClientConnection() { Close(); }

void HttpClientConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<HttpResponse> HttpClientConnection::RoundTrip(
    const std::string& method, const std::string& target,
    const std::string& body) {
  if (fd_ < 0) return Status::ExecutionError("connection is closed");
  std::string wire = SerializeRequest(method, target, body, host_);
  size_t sent = 0;
  while (sent < wire.size()) {
    ssize_t n = ::send(fd_, wire.data() + sent, wire.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      Close();
      return Status::ExecutionError(std::string("send: ") +
                                    std::strerror(saved));
    }
    sent += static_cast<size_t>(n);
  }
  char buf[8192];
  while (parser_.state() != HttpResponseParser::State::kComplete) {
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      Close();
      return Status::ExecutionError("connection closed mid-response");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      int saved = errno;
      Close();
      return Status::ExecutionError(std::string("recv: ") +
                                    std::strerror(saved));
    }
    if (parser_.Feed(buf, static_cast<size_t>(n)) ==
        HttpResponseParser::State::kError) {
      std::string error = parser_.error();
      Close();
      return Status::ExecutionError("malformed response: " + error);
    }
  }
  HttpResponse response = parser_.response();
  parser_.Consume();
  if (!response.keep_alive) Close();
  return response;
}

Result<HttpResponse> HttpFetch(const std::string& url, int timeout_ms) {
  STARBURST_ASSIGN_OR_RETURN(ParsedUrl parsed, ParseUrl(url));
  STARBURST_ASSIGN_OR_RETURN(
      HttpClientConnection conn,
      HttpClientConnection::Connect(parsed.host, parsed.port, timeout_ms));
  return conn.RoundTrip("GET", parsed.target);
}

}  // namespace service
}  // namespace starburst
