#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/metrics.h"
#include "service/admin.h"

namespace starburst {
namespace service {
namespace {

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

void SetRecvTimeout(int fd, int ms) {
  struct timeval tv;
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

RuledServer::RuledServer(TenantRegistry* registry, ServerOptions options)
    : registry_(registry), options_(std::move(options)), router_(registry) {}

RuledServer::~RuledServer() { Stop(); }

Status RuledServer::Start() {
  if (started_) return Status::InvalidArgument("server already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::ExecutionError(std::string("socket: ") +
                                  std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status status = Status::ExecutionError(
        "bind " + options_.bind_address + ":" +
        std::to_string(options_.port) + ": " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) != 0) {
    Status status =
        Status::ExecutionError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void RuledServer::RequestStop() {
  stop_.store(true, std::memory_order_relaxed);
  // Closing the listener wakes the blocking accept() immediately. close()
  // and the atomic store are both async-signal-safe, so this is callable
  // from a SIGTERM handler (tools/ruled does exactly that).
  int fd = listen_fd_;
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
  }
}

void RuledServer::Stop() {
  if (!started_ || joined_) return;
  RequestStop();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Connections notice stop_ within poll_interval_ms and finish their
  // in-flight request first. After drain_timeout_ms any connection still
  // alive gets its socket shut down hard, so a peer that went away
  // mid-request (recv blocked on a half-received body) cannot stall
  // shutdown; the join after that only waits for handlers already past
  // their socket I/O.
  std::vector<Connection> threads;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    threads.swap(connection_threads_);
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.drain_timeout_ms);
  for (bool all_done = false; !all_done;) {
    all_done = true;
    for (const Connection& c : threads) {
      if (!c.done->load(std::memory_order_acquire)) all_done = false;
    }
    if (all_done || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (Connection& c : threads) {
    if (!c.done->load(std::memory_order_acquire)) {
      ::shutdown(c.fd, SHUT_RDWR);
    }
  }
  for (Connection& c : threads) {
    if (c.thread.joinable()) c.thread.join();
    ::close(c.fd);
  }
  joined_ = true;
}

void RuledServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stop_.load(std::memory_order_relaxed)) break;
      // Transient accept failure (EMFILE under load): brief backoff.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    if (stop_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    if (active_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      metrics::GetCounter("service.rejected_connections")->Add(1);
      HttpResponse busy;
      busy.status = 503;
      busy.keep_alive = false;
      busy.body = ErrorJson("overloaded", "connection limit reached");
      SendAll(fd, SerializeResponse(busy));
      ::close(fd);
      continue;
    }
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    metrics::GetCounter("service.connections")->Add(1);
    metrics::GetGauge("service.active_connections")
        ->Set(active_connections_.load(std::memory_order_relaxed));
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::lock_guard<std::mutex> lock(threads_mu_);
    // Reap connections that have already finished so the handle list stays
    // bounded by the concurrent-connection cap over the daemon's lifetime.
    for (size_t i = 0; i < connection_threads_.size();) {
      if (connection_threads_[i].done->load(std::memory_order_acquire)) {
        connection_threads_[i].thread.join();
        ::close(connection_threads_[i].fd);
        connection_threads_[i] = std::move(connection_threads_.back());
        connection_threads_.pop_back();
      } else {
        ++i;
      }
    }
    Connection connection;
    connection.fd = fd;
    connection.done = done;
    connection.thread = std::thread([this, fd, done] {
      ServeConnection(fd);
      active_connections_.fetch_sub(1, std::memory_order_relaxed);
      metrics::GetGauge("service.active_connections")
          ->Set(active_connections_.load(std::memory_order_relaxed));
      done->store(true, std::memory_order_release);
    });
    connection_threads_.push_back(std::move(connection));
  }
}

void RuledServer::ServeConnection(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  SetRecvTimeout(fd, options_.poll_interval_ms);

  HttpRequestParser parser;
  char buf[16 * 1024];
  bool open = true;
  while (open) {
    // Drain every already-buffered (pipelined) request before reading.
    while (open && parser.state() == HttpRequestParser::State::kComplete) {
      HttpRequest request = parser.request();
      parser.Consume();
      HttpResponse response = router_.Handle(request);
      response.keep_alive = request.keep_alive && response.keep_alive &&
                            !stop_.load(std::memory_order_relaxed);
      if (!SendAll(fd, SerializeResponse(response))) open = false;
      if (!response.keep_alive) open = false;
    }
    if (!open) break;
    if (parser.state() == HttpRequestParser::State::kError) {
      metrics::GetCounter("service.http_errors")->Add(1);
      HttpResponse bad;
      bad.status = parser.error_status();
      bad.keep_alive = false;
      bad.body = ErrorJson("bad_request", parser.error());
      SendAll(fd, SerializeResponse(bad));
      break;
    }
    // A drain closes idle connections; one mid-request keeps reading so
    // the in-flight request completes.
    if (stop_.load(std::memory_order_relaxed) && parser.Empty()) break;

    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // poll tick
      break;
    }
    parser.Feed(buf, static_cast<size_t>(n));
  }
  // Terminate the TCP conversation now, but leave the descriptor open: the
  // joiner (reap loop or Stop) closes it after the join, so Stop's
  // hard-shutdown path can never race a close and hit a recycled fd.
  ::shutdown(fd, SHUT_RDWR);
}

const std::vector<RuledFlag>& RuledFlags() {
  static const std::vector<RuledFlag> flags = {
      {"--port", "N", "Listen port (0 picks a free port; default 7341)"},
      {"--bind", "ADDR", "Listen address (default 127.0.0.1)"},
      {"--max-connections", "N",
       "Concurrent connection cap; excess accepts get 503 (default 256)"},
      {"--preload", "NAME=PATH",
       "Load a tenant from a .rules catalog at startup (repeatable)"},
      {"--port-file", "PATH",
       "Write the bound port to PATH once listening (for scripts and tests)"},
      {"--threads", "N",
       "Analysis thread-pool size (default: STARBURST_THREADS or hardware)"},
      {"--drain-timeout-ms", "N",
       "How long shutdown waits for in-flight requests (default 5000)"},
      {"--help", "", "Print this usage text and exit"},
  };
  return flags;
}

std::string RuledUsage() {
  std::string usage =
      "usage: ruled [flags]\n"
      "\n"
      "Long-running multi-tenant rule service: loads independent rule\n"
      "catalogs as tenants and serves analysis, transitions, certifications,\n"
      "and divergence witnesses over HTTP/1.1 (see docs/service.md).\n"
      "Stop with SIGINT/SIGTERM: the listener closes, in-flight requests\n"
      "finish, then the process exits 0.\n"
      "\n"
      "flags:\n";
  for (const RuledFlag& flag : RuledFlags()) {
    std::string head = "  ";
    head += flag.name;
    if (flag.arg[0] != '\0') {
      head += " ";
      head += flag.arg;
    }
    if (head.size() < 28) head.resize(28, ' ');
    usage += head + " " + flag.summary + "\n";
  }
  return usage;
}

}  // namespace service
}  // namespace starburst
