#ifndef STARBURST_SERVICE_TENANT_H_
#define STARBURST_SERVICE_TENANT_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "common/metrics.h"
#include "common/status.h"
#include "engine/database.h"

namespace starburst {
namespace service {

/// One loaded tenant: an isolated Schema + RuleCatalog + Analyzer +
/// Database. Tenants share nothing mutable with each other — only the
/// process-wide read-only/append-only infrastructure (the deterministic
/// thread pool, the metrics registry). That isolation is what makes the
/// per-tenant determinism contract (docs/service.md) hold under concurrent
/// load on other tenants.
///
/// Concurrency: all request handling for a tenant happens under strand()
/// — the per-tenant serialization lock. Requests for one tenant are
/// ordered (lock-acquisition order); different tenants proceed in
/// parallel. The registry hands out shared_ptrs, so an unloaded tenant
/// stays alive until its last in-flight request finishes.
class Tenant {
 public:
  const std::string& name() const { return name_; }
  const RuleCatalog& catalog() const { return analyzer_.catalog(); }

  /// Guarded by strand(): the analyzer carries mutable certification
  /// state, and the database is the tenant's committed state.
  Analyzer& analyzer() { return analyzer_; }
  Database& db() { return db_; }
  std::mutex& strand() { return strand_; }

  /// The tenant's `service.tenant.<name>.requests` counter.
  metrics::Counter* requests() { return requests_; }

 private:
  friend class TenantRegistry;
  Tenant(std::string name, std::unique_ptr<Schema> schema, Analyzer analyzer)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        analyzer_(std::move(analyzer)),
        db_(schema_.get()),
        requests_(metrics::GetCounter("service.tenant." + name_ +
                                      ".requests")) {}

  std::string name_;
  std::unique_ptr<Schema> schema_;  // must outlive analyzer_ and db_
  Analyzer analyzer_;
  Database db_;
  std::mutex strand_;
  metrics::Counter* requests_;
};

struct TenantInfo {
  std::string name;
  int num_rules = 0;
  int num_tables = 0;
};

/// The name -> tenant map behind /v1/tenants. Thread-safe; the map lock is
/// held only for lookups and registration, never across request execution.
class TenantRegistry {
 public:
  /// Validates `name` ([A-Za-z0-9_-]{1,64}), parses `script` (the corpus
  /// `.rules` format: `create table` statements then rule definitions),
  /// compiles the catalog, and registers the tenant. Any failure leaves
  /// the registry unchanged. A duplicate name fails with InvalidArgument
  /// and a message containing "already loaded" (the router answers 409).
  Result<TenantInfo> Load(const std::string& name, const std::string& script);

  /// Unregisters the tenant. In-flight requests holding the shared_ptr
  /// complete normally on the detached tenant; NotFound for unknown names.
  Status Unload(const std::string& name);

  /// The tenant, or null. Holding the result keeps the tenant alive across
  /// an Unload.
  std::shared_ptr<Tenant> Find(const std::string& name) const;

  /// All tenants, sorted by name.
  std::vector<TenantInfo> List() const;

  int size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Tenant>> tenants_;
};

}  // namespace service
}  // namespace starburst

#endif  // STARBURST_SERVICE_TENANT_H_
