// ruled: the long-running multi-tenant rule service daemon.
//
//   ruled [--port N] [--bind ADDR] [--max-connections N]
//         [--preload NAME=PATH]... [--port-file PATH] [--threads N]
//         [--drain-timeout-ms N]
//
// Serves the wire protocol documented in docs/service.md: tenant
// load/unload, transitions run to quiescence, full analysis, pair
// certification, divergence witnesses, and the /stats & /healthz admin
// endpoints. SIGINT/SIGTERM drains: the listener closes, in-flight
// requests finish, and the process exits 0.
//
// Exit status: 0 on clean shutdown, 2 on usage errors, 1 on startup
// failure.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "service/server.h"

using namespace starburst;  // NOLINT: tool brevity

namespace {

int Usage() {
  std::fputs(service::RuledUsage().c_str(), stderr);
  return 2;
}

/// The signal handler needs the server; RequestStop() is
/// async-signal-safe (an atomic store plus shutdown(2)).
service::RuledServer* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->RequestStop();
}

bool ParseInt(const char* text, long* out) {
  char* end = nullptr;
  long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  service::ServerOptions options;
  std::vector<std::pair<std::string, std::string>> preloads;
  std::string port_file;
  int threads = 0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    long value = 0;
    if (arg == "--help") {
      std::fputs(service::RuledUsage().c_str(), stdout);
      return 0;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr || !ParseInt(v, &value) || value < 0 ||
          value > 65535) {
        return Usage();
      }
      options.port = static_cast<int>(value);
    } else if (arg == "--bind") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.bind_address = v;
    } else if (arg == "--max-connections") {
      const char* v = next();
      if (v == nullptr || !ParseInt(v, &value) || value < 1) return Usage();
      options.max_connections = static_cast<int>(value);
    } else if (arg == "--preload") {
      const char* v = next();
      if (v == nullptr) return Usage();
      std::string spec = v;
      size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::fprintf(stderr, "ruled: --preload wants NAME=PATH, got '%s'\n",
                     spec.c_str());
        return 2;
      }
      preloads.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg == "--port-file") {
      const char* v = next();
      if (v == nullptr) return Usage();
      port_file = v;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr || !ParseInt(v, &value) || value < 1) return Usage();
      threads = static_cast<int>(value);
    } else if (arg == "--drain-timeout-ms") {
      const char* v = next();
      if (v == nullptr || !ParseInt(v, &value) || value < 0) return Usage();
      options.drain_timeout_ms = static_cast<int>(value);
    } else {
      std::fprintf(stderr, "ruled: unknown flag '%s'\n", arg.c_str());
      return Usage();
    }
  }

  if (threads > 0) ThreadPool::SetDefaultThreadCount(threads);

  // The daemon keeps metrics collection on for its whole life: /stats is
  // an advertised endpoint, not an opt-in debugging mode.
  metrics::ScopedCollect collect;

  service::TenantRegistry registry;
  for (const auto& [name, path] : preloads) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "ruled: cannot read --preload catalog '%s'\n",
                   path.c_str());
      return 1;
    }
    std::ostringstream script;
    script << in.rdbuf();
    Result<service::TenantInfo> info = registry.Load(name, script.str());
    if (!info.ok()) {
      std::fprintf(stderr, "ruled: preload '%s' failed: %s\n", name.c_str(),
                   info.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "ruled: loaded tenant '%s' (%d rules, %d tables)\n",
                 name.c_str(), info.value().num_rules,
                 info.value().num_tables);
  }

  service::RuledServer server(&registry, options);
  Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "ruled: %s\n", status.ToString().c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);

  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    out << server.port() << "\n";
    if (!out) {
      std::fprintf(stderr, "ruled: cannot write --port-file '%s'\n",
                   port_file.c_str());
      server.Stop();
      return 1;
    }
  }
  std::fprintf(stderr, "ruled: listening on %s:%d (%d tenants)\n",
               options.bind_address.c_str(), server.port(), registry.size());

  while (!server.stopping()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "ruled: draining\n");
  server.Stop();
  std::fprintf(stderr, "ruled: shutdown complete\n");
  return 0;
}
