// fuzz_driver: differential + metamorphic fuzzing of the analyzers, the
// engine, and the execution backends against the paper's theorem-level
// oracles (see docs/fuzzing.md and src/testing/oracles.h).
//
// Run `fuzz_driver --help` for the flag reference. The flags are defined
// once, in FuzzDriverFlags() (src/testing/fuzzer.h); the help text, the
// table in docs/fuzzing.md, and the docs-consistency test all derive from
// that table.
//
// Exit status: 0 when every oracle run passed or skipped, 1 on any oracle
// failure, 2 on usage errors.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/strings.h"
#include "testing/fuzzer.h"
#include "testing/oracles.h"

using namespace starburst;           // NOLINT: tool brevity
using namespace starburst::fuzzing;  // NOLINT: tool brevity

namespace {

int Usage() {
  std::fprintf(stderr, "%s", FuzzDriverUsage().c_str());
  return 2;
}

/// Writes the metrics snapshot for --metrics-json ("-" = stdout).
int DumpMetrics(const std::string& path) {
  std::string json = metrics::MetricsToJson(metrics::Collect());
  if (path == "-") {
    std::printf("%s\n", json.c_str());
    return 0;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << json << "\n";
  if (!out) {
    std::fprintf(stderr, "error: cannot write metrics to '%s'\n",
                 path.c_str());
    return 2;
  }
  return 0;
}

bool ParseSeeds(const std::string& arg, uint64_t* begin, uint64_t* end) {
  size_t dots = arg.find("..");
  try {
    if (dots == std::string::npos) {
      *begin = 1;
      *end = std::stoull(arg);
    } else {
      *begin = std::stoull(arg.substr(0, dots));
      *end = std::stoull(arg.substr(dots + 2));
    }
  } catch (...) {
    return false;
  }
  return *begin <= *end;
}

bool ParseTimeBudget(const std::string& arg, double* seconds) {
  if (arg.empty()) return false;
  double scale = 1.0;
  std::string number = arg;
  switch (arg.back()) {
    case 's':
      number.pop_back();
      break;
    case 'm':
      scale = 60.0;
      number.pop_back();
      break;
    case 'h':
      scale = 3600.0;
      number.pop_back();
      break;
    default:
      break;
  }
  try {
    *seconds = std::stod(number) * scale;
  } catch (...) {
    return false;
  }
  return *seconds > 0;
}

int ReplayPath(const std::string& path, const OracleOptions& options) {
  std::vector<std::string> files;
  if (std::filesystem::is_directory(path)) {
    for (const auto& entry : std::filesystem::directory_iterator(path)) {
      if (entry.path().extension() == ".rules") {
        files.push_back(entry.path().string());
      }
    }
    std::sort(files.begin(), files.end());
  } else {
    files.push_back(path);
  }
  if (files.empty()) {
    std::fprintf(stderr, "error: no .rules files under '%s'\n", path.c_str());
    return 2;
  }
  int failures = 0;
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "error: cannot open '%s'\n", file.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto set = ParseRuleSetScript(buffer.str());
    if (!set.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", file.c_str(),
                   set.status().ToString().c_str());
      ++failures;
      continue;
    }
    std::vector<ReplayFailure> replay =
        ReplayAllOracles(set.value(), {1, 2, 3}, options);
    if (replay.empty()) {
      std::printf("PASS %s (%zu rules)\n", file.c_str(),
                  set.value().rules.size());
    } else {
      for (const ReplayFailure& f : replay) {
        std::printf("FAIL %s: %s (data seed %llu): %s\n", file.c_str(),
                    OracleName(f.oracle),
                    static_cast<unsigned long long>(f.data_seed),
                    f.message.c_str());
      }
      failures += static_cast<int>(replay.size());
    }
  }
  std::printf("replayed %zu file(s), %d failure(s)\n", files.size(),
              failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  FuzzConfig config;
  std::string replay_path;
  std::string metrics_json_path;

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") {
      std::printf("%s", FuzzDriverUsage().c_str());
      return 0;
    }
    std::string value;
    if (size_t eq = flag.find('='); eq != std::string::npos) {
      value = flag.substr(eq + 1);
      flag = flag.substr(0, eq);
    } else if (i + 1 < argc && flag.rfind("--", 0) == 0) {
      value = argv[++i];
    }
    if (flag == "--seeds") {
      if (!ParseSeeds(value, &config.seed_begin, &config.seed_end)) {
        return Usage();
      }
    } else if (flag == "--time-budget") {
      if (!ParseTimeBudget(value, &config.time_budget_seconds)) {
        return Usage();
      }
    } else if (flag == "--oracle") {
      for (const std::string& name : SplitAndTrim(value, ',')) {
        auto id = ParseOracleName(name);
        if (!id.has_value()) {
          std::fprintf(stderr, "error: unknown oracle '%s'\n", name.c_str());
          return Usage();
        }
        config.oracles.push_back(*id);
      }
    } else if (flag == "--minimize") {
      config.minimize = value != "0" && value != "false";
    } else if (flag == "--corpus-dir") {
      config.corpus_dir = value;
    } else if (flag == "--replay") {
      replay_path = value;
    } else if (flag == "--metrics-json") {
      if (value.empty()) return Usage();
      metrics_json_path = value;
    } else {
      return Usage();
    }
  }

  // --metrics-json holds collection on for the whole run (fuzz or replay)
  // and dumps the registry snapshot at the end.
  std::optional<metrics::ScopedCollect> collect;
  if (!metrics_json_path.empty()) collect.emplace();

  if (!replay_path.empty()) {
    int code = ReplayPath(replay_path, config.oracle_options);
    if (!metrics_json_path.empty()) {
      int dump = DumpMetrics(metrics_json_path);
      if (code == 0) code = dump;
    }
    return code;
  }

  std::printf("fuzzing seeds %llu..%llu%s\n",
              static_cast<unsigned long long>(config.seed_begin),
              static_cast<unsigned long long>(config.seed_end),
              config.time_budget_seconds > 0
                  ? (" (budget " + std::to_string(config.time_budget_seconds) +
                     "s)")
                        .c_str()
                  : "");
  FuzzReport report = RunFuzz(config);

  std::printf("\n%-30s %8s %8s %8s\n", "oracle", "pass", "skip", "fail");
  std::vector<OracleId> shown =
      config.oracles.empty() ? AllOracles() : config.oracles;
  for (OracleId oracle : shown) {
    int idx = static_cast<int>(oracle);
    std::printf("%-30s %8ld %8ld %8ld\n", OracleName(oracle),
                report.stats.passes[idx], report.stats.skips[idx],
                report.stats.failures[idx]);
  }
  std::printf("\n%ld case(s), %ld oracle run(s) in %.2fs (%.1f runs/sec)%s\n",
              report.stats.cases, report.stats.oracle_runs,
              report.stats.wall_seconds,
              report.stats.wall_seconds > 0
                  ? report.stats.oracle_runs / report.stats.wall_seconds
                  : 0.0,
              report.stats.time_budget_exhausted
                  ? " -- time budget exhausted"
                  : "");

  for (const FuzzFailure& failure : report.failures) {
    std::printf("\nFAILURE seed=%llu oracle=%s\n  %s\n",
                static_cast<unsigned long long>(failure.seed),
                OracleName(failure.oracle), failure.message.c_str());
    std::printf("  shrunk %d -> %d rules in %d step(s)\n",
                failure.original_num_rules, failure.minimized_num_rules,
                failure.shrink_steps);
    if (!failure.corpus_path.empty()) {
      std::printf("  reproducer: %s\n", failure.corpus_path.c_str());
    } else {
      std::printf("---- minimized reproducer ----\n%s----\n",
                  failure.minimized_script.c_str());
    }
  }
  if (!metrics_json_path.empty()) {
    int dump = DumpMetrics(metrics_json_path);
    if (dump != 0 && report.failures.empty()) return dump;
  }
  return report.failures.empty() ? 0 : 1;
}
