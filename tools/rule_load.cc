// rule_load: load generator for the ruled daemon.
//
//   rule_load --port N [--host ADDR] [--users N] [--connections N]
//             [--duration SECONDS] [--tenants N] [--seed N]
//             [--analyze-fraction F] [--json PATH] [--check]
//             [--max-p99-ms MS] [--no-cleanup]
//
// Multiplexes N simulated users (default 10000), each with its own
// deterministic request stream, over a bounded set of keep-alive
// connections; loads synthetic generated tenants first, then drives a
// transition/analyze/stats mix until the deadline and reports p50/p90/p99
// latency and requests/s (the BENCH_service.json shape).
//
// --check turns the run into a gate: nonzero exit when any HTTP or
// transport error occurred or p99 exceeded --max-p99-ms.
//
// Exit status: 0 on success, 1 when --check fails or the server is
// unreachable, 2 on usage errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "service/load_gen.h"

using namespace starburst;  // NOLINT: tool brevity

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: rule_load --port N [flags]\n"
      "\n"
      "flags:\n"
      "  --port N              ruled port to drive (required)\n"
      "  --host ADDR           ruled host (default 127.0.0.1)\n"
      "  --users N             simulated users (default 10000)\n"
      "  --connections N       driver connections/threads (default 64)\n"
      "  --duration SECONDS    how long to drive load (default 10)\n"
      "  --tenants N           synthetic tenants to load (default 4)\n"
      "  --seed N              stream seed (default 1)\n"
      "  --analyze-fraction F  fraction of requests running full analysis "
      "(default 0.05)\n"
      "  --json PATH           write the report JSON to PATH ('-' = stdout)\n"
      "  --check               exit 1 on any error or a p99 over "
      "--max-p99-ms\n"
      "  --max-p99-ms MS       p99 budget for --check (default 250)\n"
      "  --no-cleanup          leave the synthetic tenants loaded\n");
  return 2;
}

bool ParseLong(const char* text, long* out) {
  char* end = nullptr;
  long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = value;
  return true;
}

bool ParseDouble(const char* text, double* out) {
  char* end = nullptr;
  double value = std::strtod(text, &end);
  if (end == text || *end != '\0') return false;
  *out = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  service::LoadGenOptions options;
  std::string json_path;
  bool check = false;
  double max_p99_ms = 250.0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    long value = 0;
    double d = 0;
    if (arg == "--help") {
      Usage();
      return 0;
    } else if (arg == "--port") {
      const char* v = next();
      if (v == nullptr || !ParseLong(v, &value) || value < 1 ||
          value > 65535) {
        return Usage();
      }
      options.port = static_cast<int>(value);
    } else if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.host = v;
    } else if (arg == "--users") {
      const char* v = next();
      if (v == nullptr || !ParseLong(v, &value) || value < 1) return Usage();
      options.users = static_cast<int>(value);
    } else if (arg == "--connections") {
      const char* v = next();
      if (v == nullptr || !ParseLong(v, &value) || value < 1) return Usage();
      options.connections = static_cast<int>(value);
    } else if (arg == "--duration") {
      const char* v = next();
      if (v == nullptr || !ParseDouble(v, &d) || d <= 0) return Usage();
      options.duration_seconds = d;
    } else if (arg == "--tenants") {
      const char* v = next();
      if (v == nullptr || !ParseLong(v, &value) || value < 1) return Usage();
      options.tenants = static_cast<int>(value);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr || !ParseLong(v, &value) || value < 0) return Usage();
      options.seed = static_cast<uint64_t>(value);
    } else if (arg == "--analyze-fraction") {
      const char* v = next();
      if (v == nullptr || !ParseDouble(v, &d) || d < 0 || d > 1) {
        return Usage();
      }
      options.analyze_fraction = d;
    } else if (arg == "--json") {
      const char* v = next();
      if (v == nullptr) return Usage();
      json_path = v;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--max-p99-ms") {
      const char* v = next();
      if (v == nullptr || !ParseDouble(v, &d) || d <= 0) return Usage();
      max_p99_ms = d;
    } else if (arg == "--no-cleanup") {
      options.cleanup = false;
    } else {
      std::fprintf(stderr, "rule_load: unknown flag '%s'\n", arg.c_str());
      return Usage();
    }
  }
  if (options.port == 0) {
    std::fprintf(stderr, "rule_load: --port is required\n");
    return Usage();
  }

  Result<service::LoadGenReport> result = service::RunLoadGen(options);
  if (!result.ok()) {
    std::fprintf(stderr, "rule_load: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const service::LoadGenReport& report = result.value();
  std::string json = service::LoadGenReportToJson(report);

  std::fprintf(stderr,
               "rule_load: %lld requests in %.1fs (%.0f req/s), "
               "p50 %.2fms p90 %.2fms p99 %.2fms max %.2fms, "
               "%lld http errors, %lld transport errors\n",
               static_cast<long long>(report.requests), report.seconds,
               report.requests_per_second, report.p50_ms, report.p90_ms,
               report.p99_ms, report.max_ms,
               static_cast<long long>(report.http_errors),
               static_cast<long long>(report.transport_errors));

  if (!json_path.empty()) {
    if (json_path == "-") {
      std::fprintf(stdout, "%s\n", json.c_str());
    } else {
      std::ofstream out(json_path, std::ios::trunc);
      out << json << "\n";
      if (!out) {
        std::fprintf(stderr, "rule_load: cannot write '%s'\n",
                     json_path.c_str());
        return 1;
      }
    }
  }

  if (check) {
    if (report.requests == 0) {
      std::fprintf(stderr, "rule_load: check failed: no requests completed\n");
      return 1;
    }
    if (report.http_errors > 0 || report.transport_errors > 0) {
      std::fprintf(stderr, "rule_load: check failed: errors occurred\n");
      return 1;
    }
    if (report.p99_ms > max_p99_ms) {
      std::fprintf(stderr,
                   "rule_load: check failed: p99 %.2fms > budget %.2fms\n",
                   report.p99_ms, max_p99_ms);
      return 1;
    }
  }
  return 0;
}
