// explain: divergence provenance for a .rules file.
//
// Parses a self-contained rule-language script (create table statements
// followed by create rule definitions — the fuzz-corpus format), builds
// the seeded initial state the fuzz oracles use, explores every rule-
// processing order, and prints a human-readable story of WHY the set is
// not confluent / observably deterministic: the two diverging firing
// sequences, the first divergence point, the responsible non-commuting
// pair and its Lemma 6.1 conditions, and the overlapping tables. Every
// printed witness is first re-executed through the rule processor
// (ReplayWitness), so the story is checked, not trusted.
//
// usage: explain FILE.rules [--data-seed N] [--json]
//
// exit status: 0 on success (witness found and replayed, or no divergence),
// 1 when a witness fails to replay, 2 on usage / parse / engine errors.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/witness.h"
#include "rules/explorer.h"
#include "testing/oracles.h"

namespace {

constexpr const char* kUsage =
    "usage: explain FILE.rules [--data-seed N] [--json]\n"
    "\n"
    "  FILE.rules     self-contained rule script (create table statements\n"
    "                 first, then create rule definitions)\n"
    "  --data-seed N  seed for the initial database and transition\n"
    "                 (default 1; same derivation as the fuzz oracles)\n"
    "  --json         print the witness extraction as JSON instead of the\n"
    "                 human-readable story\n"
    "\n"
    "exit status: 0 on success, 1 when a witness fails to replay, 2 on\n"
    "usage, parse, or engine errors.\n";

int Fail(const std::string& message) {
  std::fprintf(stderr, "explain: %s\n", message.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace starburst;

  std::string path;
  uint64_t data_seed = 1;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help") {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (arg == "--json") {
      json = true;
      continue;
    }
    std::string value;
    if (arg.rfind("--data-seed", 0) == 0) {
      if (arg.size() > 11 && arg[11] == '=') {
        value = arg.substr(12);
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fputs(kUsage, stderr);
        return 2;
      }
      char* end = nullptr;
      data_seed = std::strtoull(value.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return Fail("invalid --data-seed value '" + value + "'");
      }
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fputs(kUsage, stderr);
      return 2;
    }
    if (!path.empty()) {
      std::fputs(kUsage, stderr);
      return 2;
    }
    path = arg;
  }
  if (path.empty()) {
    std::fputs(kUsage, stderr);
    return 2;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return Fail("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();

  auto set = fuzzing::ParseRuleSetScript(buffer.str());
  if (!set.ok()) return Fail(path + ": " + set.status().ToString());

  fuzzing::OracleOptions options;
  if (json) {
    auto rendered =
        fuzzing::WitnessJsonForCase(set.value(), data_seed, options);
    if (!rendered.ok()) return Fail(rendered.status().ToString());
    std::printf("%s\n", rendered.value().c_str());
    return 0;
  }

  auto prepared = fuzzing::PrepareOracleCase(set.value(), data_seed, options);
  if (!prepared.ok()) return Fail(prepared.status().ToString());
  const RuleCatalog& catalog = prepared.value().catalog;

  ExplorerOptions eo;
  eo.max_depth = options.max_depth;
  eo.max_total_steps = options.max_total_steps;
  eo.por = ExplorerOptions::PorMode::kOff;
  auto result = Explorer::Explore(catalog, prepared.value().db,
                                  prepared.value().initial, eo);
  if (!result.ok()) return Fail(result.status().ToString());

  std::printf("%s: %d rule(s), data seed %llu\n", path.c_str(),
              catalog.num_rules(),
              static_cast<unsigned long long>(data_seed));
  std::printf("exploration: %ld state(s), %zu final state(s), %zu "
              "observable stream(s)%s\n",
              result.value().states_visited,
              result.value().final_states.size(),
              result.value().observable_streams.size(),
              result.value().complete ? "" : " [budget exhausted]");

  WitnessOptions wo;
  wo.max_depth = options.max_depth;
  wo.max_total_steps = options.max_total_steps;
  WitnessExtraction extraction;
  if (!result.value().complete) {
    extraction.status = WitnessStatus::kNotEvaluated;
    extraction.note = "exploration budget exhausted";
  } else {
    auto extracted =
        ExtractWitness(catalog, prepared.value().db, prepared.value().initial,
                       result.value(), wo);
    if (!extracted.ok()) return Fail(extracted.status().ToString());
    extraction = std::move(extracted).value();
  }

  switch (extraction.status) {
    case WitnessStatus::kNone:
      std::printf("no divergence: every rule-processing order agrees on the "
                  "final database and the observable stream.\n");
      return 0;
    case WitnessStatus::kNotEvaluated:
      std::printf("witness not evaluated: %s\n", extraction.note.c_str());
      return 0;
    case WitnessStatus::kFound:
      break;
  }

  std::printf("\n%s", WitnessToString(extraction.witness, catalog).c_str());

  auto replay = ReplayWitness(catalog, prepared.value().db,
                              prepared.value().initial, extraction.witness);
  if (!replay.ok()) return Fail(replay.status().ToString());
  if (!replay.value().ok) {
    std::printf("\nwitness replay FAILED: %s\n",
                replay.value().message.c_str());
    return 1;
  }
  std::printf("\nwitness replay: both sequences re-executed through the "
              "rule processor and reproduced the divergent outcomes.\n");
  return 0;
}
