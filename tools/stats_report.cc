// stats_report: runs one workload end to end — full analysis, rule
// processing, execution-graph exploration — with metrics collection on,
// then prints the human-readable summary and (optionally) the metrics
// registry snapshot as JSON and a Chrome trace-event file.
//
//   stats_report <workload> [--metrics-json PATH] [--trace PATH]
//                [--threads N] [--snapshot-backend]
//                [--rows N] [--data-seed N]
//   stats_report --from-url URL [--metrics-json PATH]
//
// <workload> is a bundled application name (power_network, salary_control,
// inventory, versioning) or a path to a self-contained .rules script.
// With --from-url the metrics snapshot is fetched from a live ruled /stats
// endpoint instead of running a workload locally; the JSON is written
// through the same --metrics-json path ('-' = stdout, default).
// See docs/observability.md for the metric catalog and trace workflow.
//
// Exit status: 0 on success, 2 on usage, workload, or fetch errors.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "service/http.h"
#include "workload/stats_report.h"

using namespace starburst;  // NOLINT: tool brevity

namespace {

int Usage() {
  std::string names;
  for (const std::string& name : BundledWorkloadNames()) {
    names += "  " + name + "\n";
  }
  std::fprintf(stderr,
               "usage: stats_report <workload> [flags]\n"
               "\n"
               "flags:\n"
               "  --from-url URL        fetch the snapshot from a live ruled "
               "/stats endpoint instead of running a workload\n"
               "  --metrics-json PATH   write the metrics registry snapshot "
               "as JSON to PATH ('-' = stdout)\n"
               "  --trace PATH          write a Chrome trace-event JSON file "
               "to PATH (load in Perfetto)\n"
               "  --threads N           explorer worker threads (0 = classic "
               "single-threaded)\n"
               "  --snapshot-backend    use the snapshot-copy state backend "
               "instead of the undo log\n"
               "  --rows N              random base rows per table "
               "(.rules scripts only)\n"
               "  --data-seed N         seed for the random base data "
               "(.rules scripts only)\n"
               "\n"
               "bundled workloads:\n%s"
               "or pass a path to a .rules script.\n",
               names.c_str());
  return 2;
}

// Shared by the local-workload and --from-url paths: '-' (or empty) means
// stdout, anything else is a file. Returns 0 on success, 2 on I/O error.
int WriteMetricsJson(const std::string& path, const std::string& json) {
  if (path.empty() || path == "-") {
    std::printf("%s\n", json.c_str());
    return 0;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << json << "\n";
  if (!out) {
    std::fprintf(stderr, "error: cannot write metrics to '%s'\n",
                 path.c_str());
    return 2;
  }
  std::printf("metrics written to %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  StatsReportOptions options;
  std::string metrics_json_path;
  std::string from_url;

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") {
      Usage();
      return 0;
    }
    std::string value;
    if (size_t eq = flag.find('='); eq != std::string::npos) {
      value = flag.substr(eq + 1);
      flag = flag.substr(0, eq);
    } else if (i + 1 < argc && flag.rfind("--", 0) == 0 &&
               flag != "--snapshot-backend") {
      value = argv[++i];
    }
    if (flag == "--metrics-json") {
      if (value.empty()) return Usage();
      metrics_json_path = value;
    } else if (flag == "--from-url") {
      if (value.empty()) return Usage();
      from_url = value;
    } else if (flag == "--trace") {
      if (value.empty()) return Usage();
      options.trace_path = value;
    } else if (flag == "--threads") {
      options.explorer_threads = std::atoi(value.c_str());
    } else if (flag == "--snapshot-backend") {
      options.snapshot_backend = true;
    } else if (flag == "--rows") {
      options.rows_per_table = std::atoi(value.c_str());
      if (options.rows_per_table < 0) return Usage();
    } else if (flag == "--data-seed") {
      options.data_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (flag.rfind("--", 0) == 0) {
      return Usage();
    } else if (options.workload.empty()) {
      options.workload = flag;
    } else {
      return Usage();
    }
  }
  if (!from_url.empty()) {
    if (!options.workload.empty()) return Usage();
    Result<service::HttpResponse> fetched = service::HttpFetch(from_url);
    if (!fetched.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   fetched.status().ToString().c_str());
      return 2;
    }
    if (fetched.value().status != 200) {
      std::fprintf(stderr, "error: %s answered HTTP %d: %s\n",
                   from_url.c_str(), fetched.value().status,
                   fetched.value().body.c_str());
      return 2;
    }
    return WriteMetricsJson(metrics_json_path, fetched.value().body);
  }
  if (options.workload.empty()) return Usage();

  Result<StatsReport> report = RunStatsReport(options);
  if (!report.ok()) {
    std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
    return 2;
  }
  std::printf("%s", report.value().summary.c_str());
  if (!options.trace_path.empty()) {
    std::printf("trace written to %s\n", options.trace_path.c_str());
  }
  if (!metrics_json_path.empty()) {
    int rc = WriteMetricsJson(metrics_json_path, report.value().metrics_json);
    if (rc != 0) return rc;
  }
  return 0;
}
