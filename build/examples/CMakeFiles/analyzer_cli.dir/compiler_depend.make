# Empty compiler generated dependencies file for analyzer_cli.
# This may be replaced when dependencies are built.
