file(REMOVE_RECURSE
  "CMakeFiles/analyzer_cli.dir/analyzer_cli.cc.o"
  "CMakeFiles/analyzer_cli.dir/analyzer_cli.cc.o.d"
  "analyzer_cli"
  "analyzer_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyzer_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
