file(REMOVE_RECURSE
  "CMakeFiles/salary_control.dir/salary_control.cc.o"
  "CMakeFiles/salary_control.dir/salary_control.cc.o.d"
  "salary_control"
  "salary_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/salary_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
