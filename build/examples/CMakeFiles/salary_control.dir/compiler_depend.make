# Empty compiler generated dependencies file for salary_control.
# This may be replaced when dependencies are built.
