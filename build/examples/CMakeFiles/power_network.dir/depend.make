# Empty dependencies file for power_network.
# This may be replaced when dependencies are built.
