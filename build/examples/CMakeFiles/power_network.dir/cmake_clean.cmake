file(REMOVE_RECURSE
  "CMakeFiles/power_network.dir/power_network.cc.o"
  "CMakeFiles/power_network.dir/power_network.cc.o.d"
  "power_network"
  "power_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
