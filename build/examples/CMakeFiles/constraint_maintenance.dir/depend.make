# Empty dependencies file for constraint_maintenance.
# This may be replaced when dependencies are built.
