file(REMOVE_RECURSE
  "CMakeFiles/constraint_maintenance.dir/constraint_maintenance.cc.o"
  "CMakeFiles/constraint_maintenance.dir/constraint_maintenance.cc.o.d"
  "constraint_maintenance"
  "constraint_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraint_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
