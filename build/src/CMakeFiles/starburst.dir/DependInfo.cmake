
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/analyzer.cc" "src/CMakeFiles/starburst.dir/analysis/analyzer.cc.o" "gcc" "src/CMakeFiles/starburst.dir/analysis/analyzer.cc.o.d"
  "/root/repo/src/analysis/auto_discharge.cc" "src/CMakeFiles/starburst.dir/analysis/auto_discharge.cc.o" "gcc" "src/CMakeFiles/starburst.dir/analysis/auto_discharge.cc.o.d"
  "/root/repo/src/analysis/commutativity.cc" "src/CMakeFiles/starburst.dir/analysis/commutativity.cc.o" "gcc" "src/CMakeFiles/starburst.dir/analysis/commutativity.cc.o.d"
  "/root/repo/src/analysis/confluence.cc" "src/CMakeFiles/starburst.dir/analysis/confluence.cc.o" "gcc" "src/CMakeFiles/starburst.dir/analysis/confluence.cc.o.d"
  "/root/repo/src/analysis/dot.cc" "src/CMakeFiles/starburst.dir/analysis/dot.cc.o" "gcc" "src/CMakeFiles/starburst.dir/analysis/dot.cc.o.d"
  "/root/repo/src/analysis/incremental.cc" "src/CMakeFiles/starburst.dir/analysis/incremental.cc.o" "gcc" "src/CMakeFiles/starburst.dir/analysis/incremental.cc.o.d"
  "/root/repo/src/analysis/json_report.cc" "src/CMakeFiles/starburst.dir/analysis/json_report.cc.o" "gcc" "src/CMakeFiles/starburst.dir/analysis/json_report.cc.o.d"
  "/root/repo/src/analysis/observable.cc" "src/CMakeFiles/starburst.dir/analysis/observable.cc.o" "gcc" "src/CMakeFiles/starburst.dir/analysis/observable.cc.o.d"
  "/root/repo/src/analysis/ops.cc" "src/CMakeFiles/starburst.dir/analysis/ops.cc.o" "gcc" "src/CMakeFiles/starburst.dir/analysis/ops.cc.o.d"
  "/root/repo/src/analysis/partial_confluence.cc" "src/CMakeFiles/starburst.dir/analysis/partial_confluence.cc.o" "gcc" "src/CMakeFiles/starburst.dir/analysis/partial_confluence.cc.o.d"
  "/root/repo/src/analysis/partition.cc" "src/CMakeFiles/starburst.dir/analysis/partition.cc.o" "gcc" "src/CMakeFiles/starburst.dir/analysis/partition.cc.o.d"
  "/root/repo/src/analysis/prelim.cc" "src/CMakeFiles/starburst.dir/analysis/prelim.cc.o" "gcc" "src/CMakeFiles/starburst.dir/analysis/prelim.cc.o.d"
  "/root/repo/src/analysis/priority.cc" "src/CMakeFiles/starburst.dir/analysis/priority.cc.o" "gcc" "src/CMakeFiles/starburst.dir/analysis/priority.cc.o.d"
  "/root/repo/src/analysis/refine.cc" "src/CMakeFiles/starburst.dir/analysis/refine.cc.o" "gcc" "src/CMakeFiles/starburst.dir/analysis/refine.cc.o.d"
  "/root/repo/src/analysis/report.cc" "src/CMakeFiles/starburst.dir/analysis/report.cc.o" "gcc" "src/CMakeFiles/starburst.dir/analysis/report.cc.o.d"
  "/root/repo/src/analysis/restricted.cc" "src/CMakeFiles/starburst.dir/analysis/restricted.cc.o" "gcc" "src/CMakeFiles/starburst.dir/analysis/restricted.cc.o.d"
  "/root/repo/src/analysis/suggest.cc" "src/CMakeFiles/starburst.dir/analysis/suggest.cc.o" "gcc" "src/CMakeFiles/starburst.dir/analysis/suggest.cc.o.d"
  "/root/repo/src/analysis/termination.cc" "src/CMakeFiles/starburst.dir/analysis/termination.cc.o" "gcc" "src/CMakeFiles/starburst.dir/analysis/termination.cc.o.d"
  "/root/repo/src/analysis/triggering_graph.cc" "src/CMakeFiles/starburst.dir/analysis/triggering_graph.cc.o" "gcc" "src/CMakeFiles/starburst.dir/analysis/triggering_graph.cc.o.d"
  "/root/repo/src/baseline/hh91.cc" "src/CMakeFiles/starburst.dir/baseline/hh91.cc.o" "gcc" "src/CMakeFiles/starburst.dir/baseline/hh91.cc.o.d"
  "/root/repo/src/baseline/zh90.cc" "src/CMakeFiles/starburst.dir/baseline/zh90.cc.o" "gcc" "src/CMakeFiles/starburst.dir/baseline/zh90.cc.o.d"
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/starburst.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/starburst.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/starburst.dir/common/status.cc.o" "gcc" "src/CMakeFiles/starburst.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/starburst.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/starburst.dir/common/strings.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/CMakeFiles/starburst.dir/engine/database.cc.o" "gcc" "src/CMakeFiles/starburst.dir/engine/database.cc.o.d"
  "/root/repo/src/engine/eval.cc" "src/CMakeFiles/starburst.dir/engine/eval.cc.o" "gcc" "src/CMakeFiles/starburst.dir/engine/eval.cc.o.d"
  "/root/repo/src/engine/exec.cc" "src/CMakeFiles/starburst.dir/engine/exec.cc.o" "gcc" "src/CMakeFiles/starburst.dir/engine/exec.cc.o.d"
  "/root/repo/src/engine/serialize.cc" "src/CMakeFiles/starburst.dir/engine/serialize.cc.o" "gcc" "src/CMakeFiles/starburst.dir/engine/serialize.cc.o.d"
  "/root/repo/src/engine/table.cc" "src/CMakeFiles/starburst.dir/engine/table.cc.o" "gcc" "src/CMakeFiles/starburst.dir/engine/table.cc.o.d"
  "/root/repo/src/engine/transition.cc" "src/CMakeFiles/starburst.dir/engine/transition.cc.o" "gcc" "src/CMakeFiles/starburst.dir/engine/transition.cc.o.d"
  "/root/repo/src/engine/value.cc" "src/CMakeFiles/starburst.dir/engine/value.cc.o" "gcc" "src/CMakeFiles/starburst.dir/engine/value.cc.o.d"
  "/root/repo/src/rulelang/ast.cc" "src/CMakeFiles/starburst.dir/rulelang/ast.cc.o" "gcc" "src/CMakeFiles/starburst.dir/rulelang/ast.cc.o.d"
  "/root/repo/src/rulelang/lexer.cc" "src/CMakeFiles/starburst.dir/rulelang/lexer.cc.o" "gcc" "src/CMakeFiles/starburst.dir/rulelang/lexer.cc.o.d"
  "/root/repo/src/rulelang/parser.cc" "src/CMakeFiles/starburst.dir/rulelang/parser.cc.o" "gcc" "src/CMakeFiles/starburst.dir/rulelang/parser.cc.o.d"
  "/root/repo/src/rulelang/printer.cc" "src/CMakeFiles/starburst.dir/rulelang/printer.cc.o" "gcc" "src/CMakeFiles/starburst.dir/rulelang/printer.cc.o.d"
  "/root/repo/src/rulelang/token.cc" "src/CMakeFiles/starburst.dir/rulelang/token.cc.o" "gcc" "src/CMakeFiles/starburst.dir/rulelang/token.cc.o.d"
  "/root/repo/src/rules/explorer.cc" "src/CMakeFiles/starburst.dir/rules/explorer.cc.o" "gcc" "src/CMakeFiles/starburst.dir/rules/explorer.cc.o.d"
  "/root/repo/src/rules/processor.cc" "src/CMakeFiles/starburst.dir/rules/processor.cc.o" "gcc" "src/CMakeFiles/starburst.dir/rules/processor.cc.o.d"
  "/root/repo/src/rules/rule_catalog.cc" "src/CMakeFiles/starburst.dir/rules/rule_catalog.cc.o" "gcc" "src/CMakeFiles/starburst.dir/rules/rule_catalog.cc.o.d"
  "/root/repo/src/workload/apps.cc" "src/CMakeFiles/starburst.dir/workload/apps.cc.o" "gcc" "src/CMakeFiles/starburst.dir/workload/apps.cc.o.d"
  "/root/repo/src/workload/constraint_deriver.cc" "src/CMakeFiles/starburst.dir/workload/constraint_deriver.cc.o" "gcc" "src/CMakeFiles/starburst.dir/workload/constraint_deriver.cc.o.d"
  "/root/repo/src/workload/random_gen.cc" "src/CMakeFiles/starburst.dir/workload/random_gen.cc.o" "gcc" "src/CMakeFiles/starburst.dir/workload/random_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
