file(REMOVE_RECURSE
  "CMakeFiles/bench_frontend_explorer.dir/bench_frontend_explorer.cc.o"
  "CMakeFiles/bench_frontend_explorer.dir/bench_frontend_explorer.cc.o.d"
  "bench_frontend_explorer"
  "bench_frontend_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_frontend_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
