# Empty compiler generated dependencies file for bench_frontend_explorer.
# This may be replaced when dependencies are built.
