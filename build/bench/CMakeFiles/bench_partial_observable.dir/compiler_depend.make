# Empty compiler generated dependencies file for bench_partial_observable.
# This may be replaced when dependencies are built.
