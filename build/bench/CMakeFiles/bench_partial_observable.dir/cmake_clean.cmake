file(REMOVE_RECURSE
  "CMakeFiles/bench_partial_observable.dir/bench_partial_observable.cc.o"
  "CMakeFiles/bench_partial_observable.dir/bench_partial_observable.cc.o.d"
  "bench_partial_observable"
  "bench_partial_observable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partial_observable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
