file(REMOVE_RECURSE
  "CMakeFiles/bench_confluence.dir/bench_confluence.cc.o"
  "CMakeFiles/bench_confluence.dir/bench_confluence.cc.o.d"
  "bench_confluence"
  "bench_confluence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_confluence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
