file(REMOVE_RECURSE
  "CMakeFiles/exp_fig34_r1r2.dir/exp_fig34_r1r2.cc.o"
  "CMakeFiles/exp_fig34_r1r2.dir/exp_fig34_r1r2.cc.o.d"
  "exp_fig34_r1r2"
  "exp_fig34_r1r2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig34_r1r2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
