# Empty dependencies file for exp_fig34_r1r2.
# This may be replaced when dependencies are built.
