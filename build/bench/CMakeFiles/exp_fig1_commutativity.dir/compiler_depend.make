# Empty compiler generated dependencies file for exp_fig1_commutativity.
# This may be replaced when dependencies are built.
