file(REMOVE_RECURSE
  "CMakeFiles/exp_fig1_commutativity.dir/exp_fig1_commutativity.cc.o"
  "CMakeFiles/exp_fig1_commutativity.dir/exp_fig1_commutativity.cc.o.d"
  "exp_fig1_commutativity"
  "exp_fig1_commutativity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig1_commutativity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
