file(REMOVE_RECURSE
  "CMakeFiles/exp_fig2_confluence.dir/exp_fig2_confluence.cc.o"
  "CMakeFiles/exp_fig2_confluence.dir/exp_fig2_confluence.cc.o.d"
  "exp_fig2_confluence"
  "exp_fig2_confluence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig2_confluence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
