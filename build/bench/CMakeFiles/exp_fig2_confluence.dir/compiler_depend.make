# Empty compiler generated dependencies file for exp_fig2_confluence.
# This may be replaced when dependencies are built.
