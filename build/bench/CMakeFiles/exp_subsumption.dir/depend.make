# Empty dependencies file for exp_subsumption.
# This may be replaced when dependencies are built.
