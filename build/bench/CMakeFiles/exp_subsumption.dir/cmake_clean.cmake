file(REMOVE_RECURSE
  "CMakeFiles/exp_subsumption.dir/exp_subsumption.cc.o"
  "CMakeFiles/exp_subsumption.dir/exp_subsumption.cc.o.d"
  "exp_subsumption"
  "exp_subsumption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_subsumption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
