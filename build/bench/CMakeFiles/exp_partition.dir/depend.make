# Empty dependencies file for exp_partition.
# This may be replaced when dependencies are built.
