file(REMOVE_RECURSE
  "CMakeFiles/exp_partition.dir/exp_partition.cc.o"
  "CMakeFiles/exp_partition.dir/exp_partition.cc.o.d"
  "exp_partition"
  "exp_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
