# Empty compiler generated dependencies file for exp_partition.
# This may be replaced when dependencies are built.
