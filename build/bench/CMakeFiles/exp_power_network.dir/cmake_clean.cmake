file(REMOVE_RECURSE
  "CMakeFiles/exp_power_network.dir/exp_power_network.cc.o"
  "CMakeFiles/exp_power_network.dir/exp_power_network.cc.o.d"
  "exp_power_network"
  "exp_power_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_power_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
