# Empty dependencies file for exp_power_network.
# This may be replaced when dependencies are built.
