file(REMOVE_RECURSE
  "CMakeFiles/bench_termination.dir/bench_termination.cc.o"
  "CMakeFiles/bench_termination.dir/bench_termination.cc.o.d"
  "bench_termination"
  "bench_termination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_termination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
