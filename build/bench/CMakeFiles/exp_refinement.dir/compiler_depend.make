# Empty compiler generated dependencies file for exp_refinement.
# This may be replaced when dependencies are built.
