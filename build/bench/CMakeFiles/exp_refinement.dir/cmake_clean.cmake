file(REMOVE_RECURSE
  "CMakeFiles/exp_refinement.dir/exp_refinement.cc.o"
  "CMakeFiles/exp_refinement.dir/exp_refinement.cc.o.d"
  "exp_refinement"
  "exp_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
