file(REMOVE_RECURSE
  "CMakeFiles/exp_observable.dir/exp_observable.cc.o"
  "CMakeFiles/exp_observable.dir/exp_observable.cc.o.d"
  "exp_observable"
  "exp_observable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_observable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
