# Empty compiler generated dependencies file for exp_observable.
# This may be replaced when dependencies are built.
