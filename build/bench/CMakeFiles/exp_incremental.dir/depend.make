# Empty dependencies file for exp_incremental.
# This may be replaced when dependencies are built.
