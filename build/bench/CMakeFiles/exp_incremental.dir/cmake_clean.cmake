file(REMOVE_RECURSE
  "CMakeFiles/exp_incremental.dir/exp_incremental.cc.o"
  "CMakeFiles/exp_incremental.dir/exp_incremental.cc.o.d"
  "exp_incremental"
  "exp_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
