file(REMOVE_RECURSE
  "CMakeFiles/lemma41_property_test.dir/lemma41_property_test.cc.o"
  "CMakeFiles/lemma41_property_test.dir/lemma41_property_test.cc.o.d"
  "lemma41_property_test"
  "lemma41_property_test.pdb"
  "lemma41_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma41_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
