# Empty compiler generated dependencies file for lemma41_property_test.
# This may be replaced when dependencies are built.
