file(REMOVE_RECURSE
  "CMakeFiles/partial_confluence_test.dir/partial_confluence_test.cc.o"
  "CMakeFiles/partial_confluence_test.dir/partial_confluence_test.cc.o.d"
  "partial_confluence_test"
  "partial_confluence_test.pdb"
  "partial_confluence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_confluence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
