# Empty compiler generated dependencies file for partial_confluence_test.
# This may be replaced when dependencies are built.
