file(REMOVE_RECURSE
  "CMakeFiles/constraint_deriver_test.dir/constraint_deriver_test.cc.o"
  "CMakeFiles/constraint_deriver_test.dir/constraint_deriver_test.cc.o.d"
  "constraint_deriver_test"
  "constraint_deriver_test.pdb"
  "constraint_deriver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraint_deriver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
