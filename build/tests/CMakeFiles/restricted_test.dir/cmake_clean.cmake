file(REMOVE_RECURSE
  "CMakeFiles/restricted_test.dir/restricted_test.cc.o"
  "CMakeFiles/restricted_test.dir/restricted_test.cc.o.d"
  "restricted_test"
  "restricted_test.pdb"
  "restricted_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restricted_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
