file(REMOVE_RECURSE
  "CMakeFiles/confluence_test.dir/confluence_test.cc.o"
  "CMakeFiles/confluence_test.dir/confluence_test.cc.o.d"
  "confluence_test"
  "confluence_test.pdb"
  "confluence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confluence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
