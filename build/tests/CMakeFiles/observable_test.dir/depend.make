# Empty dependencies file for observable_test.
# This may be replaced when dependencies are built.
