# Empty compiler generated dependencies file for random_gen_test.
# This may be replaced when dependencies are built.
