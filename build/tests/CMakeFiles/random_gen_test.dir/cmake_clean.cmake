file(REMOVE_RECURSE
  "CMakeFiles/random_gen_test.dir/random_gen_test.cc.o"
  "CMakeFiles/random_gen_test.dir/random_gen_test.cc.o.d"
  "random_gen_test"
  "random_gen_test.pdb"
  "random_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
