file(REMOVE_RECURSE
  "CMakeFiles/auto_discharge_test.dir/auto_discharge_test.cc.o"
  "CMakeFiles/auto_discharge_test.dir/auto_discharge_test.cc.o.d"
  "auto_discharge_test"
  "auto_discharge_test.pdb"
  "auto_discharge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_discharge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
