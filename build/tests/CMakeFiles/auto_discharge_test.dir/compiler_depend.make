# Empty compiler generated dependencies file for auto_discharge_test.
# This may be replaced when dependencies are built.
