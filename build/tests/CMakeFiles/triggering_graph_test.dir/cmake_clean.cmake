file(REMOVE_RECURSE
  "CMakeFiles/triggering_graph_test.dir/triggering_graph_test.cc.o"
  "CMakeFiles/triggering_graph_test.dir/triggering_graph_test.cc.o.d"
  "triggering_graph_test"
  "triggering_graph_test.pdb"
  "triggering_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triggering_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
