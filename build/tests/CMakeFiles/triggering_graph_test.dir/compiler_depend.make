# Empty compiler generated dependencies file for triggering_graph_test.
# This may be replaced when dependencies are built.
