file(REMOVE_RECURSE
  "CMakeFiles/commutativity_test.dir/commutativity_test.cc.o"
  "CMakeFiles/commutativity_test.dir/commutativity_test.cc.o.d"
  "commutativity_test"
  "commutativity_test.pdb"
  "commutativity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commutativity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
