file(REMOVE_RECURSE
  "CMakeFiles/prelim_test.dir/prelim_test.cc.o"
  "CMakeFiles/prelim_test.dir/prelim_test.cc.o.d"
  "prelim_test"
  "prelim_test.pdb"
  "prelim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prelim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
