// The power-network design case study referenced in Section 5 of the
// paper (from [CW90]): the rule set's triggering graph is cyclic, and the
// interactive termination analysis lets the user discharge each cycle by
// certifying a quiescent rule.
//
// Build & run:  ./build/examples/power_network

#include <cstdio>

#include "analysis/analyzer.h"
#include "analysis/report.h"
#include "rules/processor.h"
#include "workload/apps.h"

using namespace starburst;  // NOLINT: example brevity

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  Application app = MakePowerNetworkApp();
  auto loaded_or = LoadApplication(app);
  if (!loaded_or.ok()) return Fail(loaded_or.status());
  LoadedApplication loaded = std::move(loaded_or).value();

  std::printf("== %s: %zu rules over %d tables ==\n\n", app.name.c_str(),
              loaded.rules.size(), loaded.schema->num_tables());

  auto analyzer_or =
      Analyzer::Create(loaded.schema.get(), std::move(loaded.rules));
  if (!analyzer_or.ok()) return Fail(analyzer_or.status());
  Analyzer analyzer = std::move(analyzer_or).value();

  // Round 1: the triggering graph has cycles; termination is not
  // guaranteed.
  std::printf("---- round 1: no certifications ----\n%s\n",
              TerminationReportToString(analyzer.AnalyzeTermination(),
                                        analyzer.catalog())
                  .c_str());

  // Round 2: the rule programmer inspects each reported cycle and
  // certifies the quiescent rules (the load cap and the depth floor both
  // reach fixpoints), exactly the [CW90] interactive process.
  for (const std::string& rule : app.quiescence_certifications) {
    std::printf("certifying '%s' as eventually quiescent\n", rule.c_str());
    analyzer.CertifyQuiescent(rule);
  }
  std::printf("\n---- round 2: with certifications ----\n%s\n",
              TerminationReportToString(analyzer.AnalyzeTermination(),
                                        analyzer.catalog())
                  .c_str());

  // Run the setup + sample transactions to watch the cycles quiesce.
  Database db(loaded.schema.get());
  RuleProcessor processor(&db, &analyzer.catalog());
  for (const std::string& sql : app.setup_transaction) {
    auto r = processor.ExecuteUserStatement(sql);
    if (!r.ok()) return Fail(r.status());
  }
  auto setup = processor.AssertRules();
  if (!setup.ok()) return Fail(setup.status());
  processor.Commit();
  for (const std::string& sql : app.sample_transaction) {
    auto r = processor.ExecuteUserStatement(sql);
    if (!r.ok()) return Fail(r.status());
  }
  auto result = processor.AssertRules();
  if (!result.ok()) return Fail(result.status());
  std::printf("---- sample transaction ----\n");
  std::printf("rule processing terminated after %d considerations\n",
              result.value().steps);
  TableId wire = loaded.schema->FindTable("wire");
  for (const auto& [rid, tuple] : db.storage(wire).rows()) {
    std::printf("wire%s\n", TupleToString(tuple).c_str());
  }
  TableId trench = loaded.schema->FindTable("trench");
  for (const auto& [rid, tuple] : db.storage(trench).rows()) {
    std::printf("trench%s\n", TupleToString(tuple).c_str());
  }
  return 0;
}
