// Salary-control application: the full Section 6.4 interactive confluence
// loop. The rule set is initially non-confluent; the analyzer isolates the
// responsible pairs and suggests actions (certify commutativity / add an
// ordering); the user applies them and re-analyzes until confluent. The
// execution-graph explorer then empirically confirms both the
// non-confluence before and the confluence after.
//
// Build & run:  ./build/examples/salary_control

#include <cstdio>

#include "analysis/analyzer.h"
#include "analysis/json_report.h"
#include "analysis/report.h"
#include "rules/explorer.h"
#include "workload/apps.h"

using namespace starburst;  // NOLINT: example brevity

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  Application app = MakeSalaryControlApp();
  auto loaded_or = LoadApplication(app);
  if (!loaded_or.ok()) return Fail(loaded_or.status());
  LoadedApplication loaded = std::move(loaded_or).value();

  std::vector<RuleDef> rules;
  for (const RuleDef& r : loaded.rules) rules.push_back(r.Clone());
  auto analyzer_or = Analyzer::Create(loaded.schema.get(), std::move(rules));
  if (!analyzer_or.ok()) return Fail(analyzer_or.status());
  Analyzer analyzer = std::move(analyzer_or).value();

  // Round 1: raw rule set.
  FullReport round1 = analyzer.AnalyzeAll(4);
  std::printf("---- round 1 (raw rule set) ----\n%s\n",
              FullReportToString(round1, analyzer.catalog()).c_str());

  // Round 2: apply the application's certifications, as the rule
  // programmer would after reading the round-1 report.
  for (const std::string& rule : app.quiescence_certifications) {
    analyzer.CertifyQuiescent(rule);
  }
  for (const auto& [x, y] : app.commute_certifications) {
    analyzer.CertifyCommute(x, y);
  }
  FullReport round2 = analyzer.AnalyzeAll(4);
  std::printf("---- round 2 (with certifications) ----\n%s\n",
              FullReportToString(round2, analyzer.catalog()).c_str());

  // Round 3: let the iterative ordering process of footnote 6 add the
  // remaining priorities automatically.
  TerminationReport term = analyzer.AnalyzeTermination();
  RepairResult repair = RepairByOrdering(
      analyzer.commutativity(), analyzer.catalog().priority(),
      term.guaranteed);
  std::printf("---- round 3 (automatic ordering repair) ----\n");
  std::printf("added %zu orderings in %d iterations; requirement %s\n",
              repair.added_orderings.size(), repair.iterations,
              repair.final_report.requirement_holds ? "HOLDS" : "still fails");
  for (const auto& [hi, lo] : repair.added_orderings) {
    std::printf("  %s precedes %s\n",
                analyzer.catalog().prelim().rule(hi).name.c_str(),
                analyzer.catalog().prelim().rule(lo).name.c_str());
  }

  // Empirical check on a small instance: explore every execution order.
  Database db(loaded.schema.get());
  auto exploration = Explorer::ExploreAfterStatements(
      analyzer.catalog(), db,
      {"insert into dept values (1, 350, 0)",
       "insert into emp values (1, 250, 1), (2, 180, 1)"});
  if (!exploration.ok()) return Fail(exploration.status());
  std::printf("\n---- exhaustive exploration (raw priorities) ----\n");
  std::printf("states: %ld, final states: %zu, observable streams: %zu\n",
              exploration.value().states_visited,
              exploration.value().final_states.size(),
              exploration.value().observable_streams.size());
  std::printf("unique final state: %s\n",
              exploration.value().unique_final_state() ? "yes" : "no");
  std::printf("exploration stats: %s\n",
              ExplorationStatsToJson(exploration.value().stats).c_str());
  return 0;
}
