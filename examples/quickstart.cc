// Quickstart: define a schema and a few production rules, run the static
// analyses of the paper (termination, confluence, observable determinism),
// act on the analyzer's feedback, and finally execute a transaction under
// rule processing.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "analysis/analyzer.h"
#include "analysis/report.h"
#include "rulelang/parser.h"
#include "rules/processor.h"

using namespace starburst;  // NOLINT: example brevity

namespace {

constexpr const char* kSchema = R"(
  create table emp (id int, salary int, dept int);
  create table dept (id int, budget int);
  create table audit (emp_id int, salary int);
)";

constexpr const char* kRules = R"(
  -- Cap salaries at 150.
  create rule salary_cap on emp
  when inserted, updated(salary)
  if exists (select * from emp where salary > 150)
  then update emp set salary = 150 where salary > 150;

  -- Log every salary change.
  create rule audit_salary on emp
  when updated(salary)
  then insert into audit select id, salary from new_updated;
)";

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  // 1. Parse the schema and rules.
  Schema schema;
  auto ddl = Parser::ParseScript(kSchema);
  if (!ddl.ok()) return Fail(ddl.status());
  for (const StmtPtr& stmt : ddl.value().statements) {
    auto added = schema.AddTable(stmt->table, stmt->create_columns);
    if (!added.ok()) return Fail(added.status());
  }
  auto script = Parser::ParseScript(kRules);
  if (!script.ok()) return Fail(script.status());

  // 2. Build the analyzer and run every analysis.
  auto analyzer_or =
      Analyzer::Create(&schema, std::move(script.value().rules));
  if (!analyzer_or.ok()) return Fail(analyzer_or.status());
  Analyzer analyzer = std::move(analyzer_or).value();

  std::printf("---- initial analysis ----\n%s\n",
              FullReportToString(analyzer.AnalyzeAll(), analyzer.catalog())
                  .c_str());

  // 3. The triggering graph has a cycle (salary_cap can retrigger itself),
  // but repeated consideration drives every salary to <= 150, after which
  // its action has no effect. Certify that, as the paper's interactive
  // environment would let the rule programmer do (Section 5).
  analyzer.CertifyQuiescent("salary_cap");
  std::printf("---- after certifying salary_cap quiescent ----\n%s\n",
              FullReportToString(analyzer.AnalyzeAll(), analyzer.catalog())
                  .c_str());

  // 4. Run a transaction under rule processing.
  Database db(&schema);
  RuleProcessor processor(&db, &analyzer.catalog());
  for (const char* sql : {
           "insert into dept values (1, 1000)",
           "insert into emp values (1, 120, 1), (2, 400, 1)",
           "update emp set salary = salary + 10 where id = 1",
       }) {
    auto r = processor.ExecuteUserStatement(sql);
    if (!r.ok()) return Fail(r.status());
  }
  auto result = processor.AssertRules();
  if (!result.ok()) return Fail(result.status());
  processor.Commit();

  std::printf("---- rule processing ----\n");
  std::printf("terminated: %s after %d rule considerations\n",
              result.value().terminated ? "yes" : "no", result.value().steps);
  TableId emp = schema.FindTable("emp");
  for (const auto& [rid, tuple] : db.storage(emp).rows()) {
    std::printf("emp%s\n", TupleToString(tuple).c_str());
  }
  TableId audit = schema.FindTable("audit");
  std::printf("audit rows: %zu\n", db.storage(audit).size());
  return 0;
}
