// analyzer_cli: the interactive development environment for rule
// programmers that the paper proposes (Sections 1 and 9), as a command
// line tool.
//
// Usage:
//   analyzer_cli <script.rules> [command ...]
//
// The script file contains `create table` and `create rule` statements.
// Commands (executed in order; default is `report`):
//   report                      run all analyses and print the report
//   json                        run all analyses and print JSON
//   termination                 run termination analysis only
//   confluence                  run confluence analysis only
//   observable                  run observable-determinism analysis only
//   partial=<t1,t2,...>         partial confluence w.r.t. the named tables
//   quiescent=<rule>            certify a rule as eventually quiescent
//   commute=<rule1,rule2>       certify that two rules commute
//   explain=<rule1,rule2>       show why a pair is (non)commutative
//   refine                      auto-certify provably-commuting pairs
//                               (Section 6.1 special cases)
//   discharge                   auto-certify provably-quiescent cycle
//                               rules (Section 5 special cases)
//   repair                      iteratively add orderings until confluent
//   dot=<file>                  write the triggering graph as GraphViz DOT
//   data=<file>                 load a DML script as base data (no rules)
//   exec=<sql>                  run one statement under rule processing
//   assert                      rule assertion point (prints the trace)
//   dump                        print the database as a loadable script
//
// Example:
//   analyzer_cli examples/data/salary.rules report quiescent=salary_cap
//       commute=audit_raise,budget_track report

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/dot.h"
#include "analysis/json_report.h"
#include "analysis/refine.h"
#include "analysis/report.h"
#include "common/strings.h"
#include "engine/serialize.h"
#include "rulelang/parser.h"
#include "rules/processor.h"

using namespace starburst;  // NOLINT: example brevity

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: analyzer_cli <script.rules> [command ...]\n"
               "commands: report | json | termination | confluence |\n"
               "          observable | partial=<tables> | quiescent=<rule> |\n"
               "          commute=<r1,r2> | explain=<r1,r2> | refine |\n"
               "          discharge | repair | dot=<file> | data=<file> |\n"
               "          exec=<sql> | assert | dump\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", argv[1]);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  auto script = Parser::ParseScript(buffer.str());
  if (!script.ok()) return Fail(script.status());

  Schema schema;
  for (const StmtPtr& stmt : script.value().statements) {
    if (stmt->kind != StmtKind::kCreateTable) {
      return Fail(Status::InvalidArgument(
          "script may only contain create table / create rule statements"));
    }
    auto added = schema.AddTable(stmt->table, stmt->create_columns);
    if (!added.ok()) return Fail(added.status());
  }
  auto analyzer_or =
      Analyzer::Create(&schema, std::move(script.value().rules));
  if (!analyzer_or.ok()) return Fail(analyzer_or.status());
  Analyzer analyzer = std::move(analyzer_or).value();
  std::printf("loaded %d rules over %d tables from %s\n\n",
              analyzer.catalog().num_rules(), schema.num_tables(), argv[1]);

  // Execution context for data/exec/assert/dump commands.
  Database db(&schema);
  ProcessorOptions processor_options;
  processor_options.record_trace = true;
  RuleProcessor processor(&db, &analyzer.catalog(), processor_options);

  std::vector<std::string> commands;
  for (int i = 2; i < argc; ++i) commands.emplace_back(argv[i]);
  if (commands.empty()) commands.emplace_back("report");

  for (const std::string& command : commands) {
    std::string name = command;
    std::string arg;
    if (size_t eq = command.find('='); eq != std::string::npos) {
      name = command.substr(0, eq);
      arg = command.substr(eq + 1);
    }
    if (name == "report") {
      std::printf("%s\n",
                  FullReportToString(analyzer.AnalyzeAll(8),
                                     analyzer.catalog())
                      .c_str());
    } else if (name == "json") {
      std::printf("%s\n",
                  FullReportToJson(analyzer.AnalyzeAll(8), analyzer.catalog())
                      .c_str());
    } else if (name == "termination") {
      std::printf("%s\n",
                  TerminationReportToString(analyzer.AnalyzeTermination(),
                                            analyzer.catalog())
                      .c_str());
    } else if (name == "confluence") {
      std::printf("%s\n",
                  ConfluenceReportToString(analyzer.AnalyzeConfluence(8),
                                           analyzer.catalog())
                      .c_str());
    } else if (name == "observable") {
      std::printf("%s\n",
                  ObservableReportToString(
                      analyzer.AnalyzeObservableDeterminism(8),
                      analyzer.catalog())
                      .c_str());
    } else if (name == "partial") {
      auto report = analyzer.AnalyzePartialConfluence(
          SplitAndTrim(arg, ','), 8);
      if (!report.ok()) return Fail(report.status());
      std::printf("%s\n",
                  PartialConfluenceReportToString(report.value(),
                                                  analyzer.catalog())
                      .c_str());
    } else if (name == "quiescent") {
      analyzer.CertifyQuiescent(arg);
      std::printf("certified '%s' as eventually quiescent\n\n", arg.c_str());
    } else if (name == "commute") {
      auto pair = SplitAndTrim(arg, ',');
      if (pair.size() != 2) return Usage();
      analyzer.CertifyCommute(pair[0], pair[1]);
      std::printf("certified '%s' and '%s' as commuting\n\n",
                  pair[0].c_str(), pair[1].c_str());
    } else if (name == "refine") {
      int added = analyzer.ApplyAutoRefinement();
      std::printf("automatic refinement certified %d pair(s)\n\n", added);
    } else if (name == "explain") {
      auto pair = SplitAndTrim(arg, ',');
      if (pair.size() != 2) return Usage();
      RuleIndex i = analyzer.catalog().FindRule(pair[0]);
      RuleIndex j = analyzer.catalog().FindRule(pair[1]);
      if (i < 0 || j < 0) {
        std::fprintf(stderr, "error: unknown rule in '%s'\n", arg.c_str());
        return 1;
      }
      const CommutativityAnalyzer& commutativity = analyzer.commutativity();
      if (commutativity.Commute(i, j)) {
        std::printf("'%s' and '%s' commute%s\n\n", pair[0].c_str(),
                    pair[1].c_str(),
                    commutativity.CertifiedOnly(i, j)
                        ? " (by certification)"
                        : " (Lemma 6.1)");
      } else {
        std::printf("'%s' and '%s' may be noncommutative:\n",
                    pair[0].c_str(), pair[1].c_str());
        for (const NoncommutativityCause& cause :
             commutativity.Explain(i, j)) {
          std::printf("  - %s\n",
                      cause.Describe(analyzer.catalog().prelim(),
                                     analyzer.catalog().schema())
                          .c_str());
        }
        PredicateRefiner refiner(analyzer.catalog().schema(),
                                 analyzer.catalog().rules(),
                                 analyzer.catalog().prelim());
        std::printf("automatic refinement: %s\n\n",
                    refiner.PairCommutes(i, j)
                        ? "CAN prove the pair commutes (run `refine`)"
                        : "cannot prove the pair commutes");
      }
    } else if (name == "discharge") {
      int added = analyzer.ApplyAutoDischarge();
      std::printf("automatic discharge certified %d rule(s) as quiescent\n\n",
                  added);
    } else if (name == "dot") {
      TerminationReport term = analyzer.AnalyzeTermination();
      std::string dot = TriggeringGraphToDot(analyzer.catalog(), &term);
      std::ofstream out(arg);
      if (!out) {
        std::fprintf(stderr, "error: cannot write '%s'\n", arg.c_str());
        return 1;
      }
      out << dot;
      std::printf("wrote triggering graph to %s\n\n", arg.c_str());
    } else if (name == "data") {
      std::ifstream data_in(arg);
      if (!data_in) {
        std::fprintf(stderr, "error: cannot open '%s'\n", arg.c_str());
        return 1;
      }
      std::ostringstream data_buf;
      data_buf << data_in.rdbuf();
      auto loaded = LoadDatabaseScript(&schema, data_buf.str());
      if (!loaded.ok()) return Fail(loaded.status());
      db = std::move(loaded).value();
      db.SyncWithSchema();
      std::printf("loaded base data from %s\n\n", arg.c_str());
    } else if (name == "exec") {
      auto r = processor.ExecuteUserStatement(arg);
      if (!r.ok()) return Fail(r.status());
      for (const ObservableEvent& ev : r.value().observables) {
        std::printf("  -> %s\n", ev.payload.c_str());
      }
      std::printf("executed: %s\n\n", arg.c_str());
    } else if (name == "assert") {
      auto r = processor.AssertRules();
      if (!r.ok()) return Fail(r.status());
      processor.Commit();
      std::printf("rule processing %s after %d consideration(s)%s\n",
                  r.value().terminated ? "terminated" : "stopped",
                  r.value().steps,
                  r.value().rolled_back ? " (ROLLED BACK)" : "");
      if (!r.value().trace.empty()) {
        std::printf("%s",
                    TraceToString(r.value().trace, analyzer.catalog())
                        .c_str());
      }
      for (const ObservableEvent& ev : r.value().observables) {
        std::printf("  observable: %s\n", ev.payload.c_str());
      }
      std::printf("\n");
    } else if (name == "dump") {
      std::printf("%s\n", DumpDatabase(db).c_str());
    } else if (name == "repair") {
      TerminationReport term = analyzer.AnalyzeTermination();
      RepairResult repair = RepairByOrdering(
          analyzer.commutativity(), analyzer.catalog().priority(),
          term.guaranteed);
      std::printf("repair: %zu orderings added, requirement %s\n",
                  repair.added_orderings.size(),
                  repair.final_report.requirement_holds ? "HOLDS" : "fails");
      for (const auto& [hi, lo] : repair.added_orderings) {
        std::printf("  %s precedes %s\n",
                    analyzer.catalog().prelim().rule(hi).name.c_str(),
                    analyzer.catalog().prelim().rule(lo).name.c_str());
      }
      std::printf("\n");
    } else {
      return Usage();
    }
  }
  return 0;
}
