// Constraint maintenance in the style of [CW90]: declare referential
// integrity constraints, derive production rules that enforce them,
// analyze the derived rule set (termination & confluence), and exercise
// the enforcement on live transactions (cascade, set-null, abort).
//
// Build & run:  ./build/examples/constraint_maintenance

#include <cstdio>

#include "analysis/analyzer.h"
#include "analysis/report.h"
#include "rulelang/parser.h"
#include "rulelang/printer.h"
#include "rules/processor.h"
#include "workload/constraint_deriver.h"

using namespace starburst;  // NOLINT: example brevity

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

void DumpTable(const Database& db, const std::string& name) {
  TableId t = db.schema().FindTable(name);
  std::printf("  %s:", name.c_str());
  for (const auto& [rid, tuple] : db.storage(t).rows()) {
    std::printf(" %s", TupleToString(tuple).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Schema schema;
  auto ddl = Parser::ParseScript(R"(
    create table department (dno int, name string);
    create table employee (eno int, dno int);
    create table assignment (eno int, project int);
  )");
  if (!ddl.ok()) return Fail(ddl.status());
  for (const StmtPtr& stmt : ddl.value().statements) {
    auto added = schema.AddTable(stmt->table, stmt->create_columns);
    if (!added.ok()) return Fail(added.status());
  }

  // employee.dno references department.dno (cascade on delete);
  // assignment.eno references employee.eno (cascade on delete).
  ReferentialConstraint emp_dept;
  emp_dept.child_table = "employee";
  emp_dept.fk_column = "dno";
  emp_dept.parent_table = "department";
  emp_dept.pk_column = "dno";
  emp_dept.on_delete = ReferentialConstraint::DeleteAction::kCascade;

  ReferentialConstraint asg_emp = emp_dept;
  asg_emp.child_table = "assignment";
  asg_emp.fk_column = "eno";
  asg_emp.parent_table = "employee";
  asg_emp.pk_column = "eno";

  auto rules = ConstraintRuleDeriver::DeriveAll(schema, {emp_dept, asg_emp});
  if (!rules.ok()) return Fail(rules.status());

  std::printf("---- derived rules ----\n");
  for (const RuleDef& rule : rules.value()) {
    std::printf("%s;\n\n", RuleToString(rule).c_str());
  }

  auto analyzer_or = Analyzer::Create(&schema, std::move(rules).value());
  if (!analyzer_or.ok()) return Fail(analyzer_or.status());
  Analyzer analyzer = std::move(analyzer_or).value();
  std::printf("---- analysis of the derived rule set ----\n%s\n",
              FullReportToString(analyzer.AnalyzeAll(8), analyzer.catalog())
                  .c_str());

  // Exercise enforcement.
  Database db(&schema);
  RuleProcessor processor(&db, &analyzer.catalog());
  for (const char* sql : {
           "insert into department values (1, 'eng'), (2, 'sales')",
           "insert into employee values (10, 1), (11, 1), (12, 2)",
           "insert into assignment values (10, 100), (11, 100), (12, 200)",
       }) {
    auto r = processor.ExecuteUserStatement(sql);
    if (!r.ok()) return Fail(r.status());
  }
  auto setup = processor.AssertRules();
  if (!setup.ok()) return Fail(setup.status());
  processor.Commit();
  std::printf("---- initial data ----\n");
  DumpTable(db, "department");
  DumpTable(db, "employee");
  DumpTable(db, "assignment");

  // Deleting department 1 cascades transitively to employees 10, 11 and
  // their assignments.
  auto del = processor.ExecuteUserStatement(
      "delete from department where dno = 1");
  if (!del.ok()) return Fail(del.status());
  auto result = processor.AssertRules();
  if (!result.ok()) return Fail(result.status());
  processor.Commit();
  std::printf("---- after deleting department 1 (cascade) ----\n");
  DumpTable(db, "department");
  DumpTable(db, "employee");
  DumpTable(db, "assignment");

  // Inserting an employee with a dangling department aborts.
  auto ins = processor.ExecuteUserStatement(
      "insert into employee values (99, 42)");
  if (!ins.ok()) return Fail(ins.status());
  auto veto = processor.AssertRules();
  if (!veto.ok()) return Fail(veto.status());
  std::printf("---- dangling insert: %s ----\n",
              veto.value().rolled_back ? "ROLLED BACK (as intended)"
                                       : "unexpectedly accepted");
  DumpTable(db, "employee");
  return 0;
}
